//! The model checker: formulas → world sets.
//!
//! Implements exactly the clauses (a)–(j) of Appendix A of Halpern–Moses:
//! each formula (possibly with a free fixed-point variable) denotes a
//! function from world sets to world sets; closed formulas denote constant
//! functions, i.e. the set of worlds where they hold. Greatest (and least)
//! fixed points are computed by monotone iteration, justified by the
//! Knaster–Tarski theorem on the finite lattice of world sets; the
//! positivity restriction of Appendix A is enforced syntactically before
//! iterating.

use crate::formula::Formula;
use crate::frame::Frame;
use crate::temporal;
use hm_kripke::{AgentGroup, WorldId, WorldSet};
use std::collections::HashMap;
use std::fmt;

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The formula mentions an atom the frame does not interpret.
    UnknownAtom(String),
    /// A fixed-point variable occurs free (unbound by any `ν`/`µ`).
    UnboundVar(String),
    /// A fixed-point binder whose variable occurs negatively (or under a
    /// biconditional) in its body — the function need not be monotone, so
    /// the fixed point need not exist (Appendix A's syntactic restriction).
    NonMonotone(String),
    /// A temporal operator was evaluated on a frame without run/time
    /// structure.
    NoTemporalStructure(String),
    /// An agent index outside `0..frame.num_agents()`.
    AgentOutOfRange(usize),
    /// A resource ceiling, deadline, or cancellation interrupted the
    /// evaluation (see `hm-limits`). Carried inside the evaluation error
    /// so budgeted evaluation keeps the ordinary result type.
    Limit(hm_limits::LimitExceeded),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownAtom(a) => write!(f, "unknown atom `{a}`"),
            EvalError::UnboundVar(x) => write!(f, "unbound fixed-point variable `{x}`"),
            EvalError::NonMonotone(x) => {
                write!(f, "variable `{x}` occurs non-positively under its binder")
            }
            EvalError::NoTemporalStructure(op) => {
                write!(
                    f,
                    "temporal operator `{op}` on a frame without run/time structure"
                )
            }
            EvalError::AgentOutOfRange(i) => write!(f, "agent index {i} out of range"),
            EvalError::Limit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<hm_limits::LimitExceeded> for EvalError {
    fn from(e: hm_limits::LimitExceeded) -> Self {
        EvalError::Limit(e)
    }
}

/// Evaluates a closed formula on a frame, returning the set of worlds where
/// it holds.
///
/// Formulas of fewer than [`COMPILE_THRESHOLD`] nodes are evaluated by
/// the tree walker directly: for a one-shot query on a tiny formula the
/// compiler's lowering/interning overhead exceeds the whole evaluation.
/// Everything else is lowered by [`compile`](crate::compile) to a flat
/// instruction buffer (atoms and groups interned, fixed-point slots
/// preallocated) and executed once. Callers evaluating the same formula
/// repeatedly should compile once and reuse the
/// [`CompiledFormula`](crate::CompiledFormula) — or go through an
/// `hm-engine` `Session`, which caches compilations per formula.
///
/// # Errors
///
/// See [`EvalError`]. In particular, temporal operators require the frame
/// to expose a [`TemporalStructure`](crate::TemporalStructure).
///
/// # Examples
///
/// ```
/// use hm_logic::{evaluate, Formula};
/// use hm_kripke::{ModelBuilder, AgentId, AgentGroup};
/// let mut b = ModelBuilder::new(1);
/// let w0 = b.add_world("w0");
/// let w1 = b.add_world("w1");
/// let p = b.atom("p");
/// b.set_atom(p, w0, true);
/// b.set_partition_by_key(AgentId::new(0), |_| ());
/// let m = b.build();
/// let knows_p = Formula::knows(AgentId::new(0), Formula::atom("p"));
/// let holds = evaluate(&m, &knows_p)?;
/// assert!(holds.is_empty()); // agent can't distinguish, so never knows p
/// # Ok::<(), hm_logic::EvalError>(())
/// ```
pub fn evaluate(frame: &dyn Frame, f: &Formula) -> Result<WorldSet, EvalError> {
    if f.node_count() < COMPILE_THRESHOLD {
        return evaluate_tree(frame, f);
    }
    crate::compile::compile(f)?.eval(frame)
}

/// Below this node count a one-shot [`evaluate`] skips the compiler and
/// runs the reference tree walker. Both paths are differentially tested
/// to agree on every formula, so the cutoff is purely a performance
/// knob: ~8 nodes is where compile cost stops dominating on the
/// benchmark suite's small queries.
pub const COMPILE_THRESHOLD: usize = 8;

/// The original tree-walking evaluator, kept as the executable reference
/// semantics: it resolves atoms by `&str` at every node and carries an
/// explicit fixed-point environment. Property tests assert it agrees with
/// the compiled path on random models and formulas; the benchmark suite
/// measures the compiled path against it.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_tree(frame: &dyn Frame, f: &Formula) -> Result<WorldSet, EvalError> {
    let mut env = Env::new();
    eval(frame, f, &mut env)
}

/// `true` iff the closed formula holds at world `w`.
///
/// # Errors
///
/// Propagates [`EvalError`] from [`evaluate`].
pub fn holds_at(frame: &dyn Frame, f: &Formula, w: WorldId) -> Result<bool, EvalError> {
    Ok(evaluate(frame, f)?.contains(w))
}

/// `true` iff the closed formula is *valid in the system* (holds at every
/// world of the frame) — the validity notion of Section 6, hypothesis of
/// the necessitation and induction rules.
///
/// # Errors
///
/// Propagates [`EvalError`] from [`evaluate`].
pub fn is_valid(frame: &dyn Frame, f: &Formula) -> Result<bool, EvalError> {
    Ok(evaluate(frame, f)?.is_full())
}

type Env = HashMap<String, WorldSet>;

pub(crate) fn group_check(frame: &dyn Frame, g: &AgentGroup) -> Result<(), EvalError> {
    for i in g.iter() {
        if i.index() >= frame.num_agents() {
            return Err(EvalError::AgentOutOfRange(i.index()));
        }
    }
    Ok(())
}

fn eval(frame: &dyn Frame, f: &Formula, env: &mut Env) -> Result<WorldSet, EvalError> {
    let n = frame.num_worlds();
    match f {
        Formula::True => Ok(WorldSet::full(n)),
        Formula::False => Ok(WorldSet::empty(n)),
        Formula::Atom(name) => frame
            .atom_set(name)
            .ok_or_else(|| EvalError::UnknownAtom(name.clone())),
        Formula::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVar(x.clone())),
        Formula::Not(a) => Ok(eval(frame, a, env)?.complement()),
        Formula::And(xs) => {
            let mut out = WorldSet::full(n);
            for x in xs {
                out.intersect_with(&eval(frame, x, env)?);
                if out.is_empty() {
                    // Keep evaluating for error detection? No: semantics
                    // are total once subformulas are well-formed; short
                    // circuiting would hide errors, so don't.
                }
            }
            Ok(out)
        }
        Formula::Or(xs) => {
            let mut out = WorldSet::empty(n);
            for x in xs {
                out.union_with(&eval(frame, x, env)?);
            }
            Ok(out)
        }
        Formula::Implies(a, b) => {
            let av = eval(frame, a, env)?;
            let bv = eval(frame, b, env)?;
            Ok(av.complement().union(&bv))
        }
        Formula::Iff(a, b) => {
            let av = eval(frame, a, env)?;
            let bv = eval(frame, b, env)?;
            let both = av.intersection(&bv);
            let neither = av.complement().intersection(&bv.complement());
            Ok(both.union(&neither))
        }
        Formula::Knows(i, a) => {
            if i.index() >= frame.num_agents() {
                return Err(EvalError::AgentOutOfRange(i.index()));
            }
            let av = eval(frame, a, env)?;
            Ok(frame.knowledge_set(*i, &av))
        }
        Formula::EveryoneK(g, k, a) => {
            group_check(frame, g)?;
            let mut cur = eval(frame, a, env)?;
            for _ in 0..*k {
                cur = frame.everyone_set(g, &cur);
            }
            Ok(cur)
        }
        Formula::Someone(g, a) => {
            group_check(frame, g)?;
            let av = eval(frame, a, env)?;
            let mut out = WorldSet::empty(n);
            for i in g.iter() {
                out.union_with(&frame.knowledge_set(i, &av));
            }
            Ok(out)
        }
        Formula::Distributed(g, a) => {
            group_check(frame, g)?;
            let av = eval(frame, a, env)?;
            Ok(frame.distributed_set(g, &av))
        }
        Formula::Common(g, a) => {
            group_check(frame, g)?;
            let av = eval(frame, a, env)?;
            Ok(frame.common_set(g, &av))
        }
        Formula::Gfp(x, body) => {
            check_positive(body, x)?;
            fixpoint(frame, x, body, env, WorldSet::full(n))
        }
        Formula::Lfp(x, body) => {
            check_positive(body, x)?;
            fixpoint(frame, x, body, env, WorldSet::empty(n))
        }
        Formula::Next(a) => {
            let ts = need_temporal(frame, "next")?;
            let av = eval(frame, a, env)?;
            Ok(temporal::next_set(ts, &av))
        }
        Formula::Eventually(a) => {
            let ts = need_temporal(frame, "even")?;
            let av = eval(frame, a, env)?;
            Ok(temporal::eventually_set(ts, &av))
        }
        Formula::Always(a) => {
            let ts = need_temporal(frame, "alw")?;
            let av = eval(frame, a, env)?;
            Ok(temporal::always_set(ts, &av))
        }
        Formula::Once(a) => {
            let ts = need_temporal(frame, "once")?;
            let av = eval(frame, a, env)?;
            Ok(temporal::once_set(ts, &av))
        }
        Formula::EveryoneEps(g, eps, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "Eeps")?;
            let av = eval(frame, a, env)?;
            let k_sets = member_knowledge(frame, g, &av);
            Ok(temporal::everyone_eps_set(ts, g, *eps, &k_sets))
        }
        Formula::EveryoneEv(g, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "Eev")?;
            let av = eval(frame, a, env)?;
            let k_sets = member_knowledge(frame, g, &av);
            Ok(temporal::everyone_ev_set(ts, g, &k_sets))
        }
        Formula::KnowsAt(i, stamp, a) => {
            if i.index() >= frame.num_agents() {
                return Err(EvalError::AgentOutOfRange(i.index()));
            }
            let ts = need_temporal(frame, "K@")?;
            let av = eval(frame, a, env)?;
            let k = frame.knowledge_set(*i, &av);
            Ok(temporal::knows_at_set(ts, *i, *stamp, &k))
        }
        Formula::EveryoneTs(g, stamp, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "ET")?;
            let av = eval(frame, a, env)?;
            let k_sets = member_knowledge(frame, g, &av);
            Ok(temporal::everyone_ts_set(ts, g, *stamp, &k_sets))
        }
        Formula::CommonEps(g, eps, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "Ceps")?;
            let av = eval(frame, a, env)?;
            // νX. E^ε_G(a ∧ X) by downward iteration.
            let mut x = WorldSet::full(n);
            loop {
                let arg = av.intersection(&x);
                let k_sets = member_knowledge(frame, g, &arg);
                let next = temporal::everyone_eps_set(ts, g, *eps, &k_sets);
                if next == x {
                    return Ok(x);
                }
                x = next;
            }
        }
        Formula::CommonEv(g, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "Cev")?;
            let av = eval(frame, a, env)?;
            let mut x = WorldSet::full(n);
            loop {
                let arg = av.intersection(&x);
                let k_sets = member_knowledge(frame, g, &arg);
                let next = temporal::everyone_ev_set(ts, g, &k_sets);
                if next == x {
                    return Ok(x);
                }
                x = next;
            }
        }
        Formula::CommonTs(g, stamp, a) => {
            group_check(frame, g)?;
            let ts = need_temporal(frame, "CT")?;
            let av = eval(frame, a, env)?;
            let mut x = WorldSet::full(n);
            loop {
                let arg = av.intersection(&x);
                let k_sets = member_knowledge(frame, g, &arg);
                let next = temporal::everyone_ts_set(ts, g, *stamp, &k_sets);
                if next == x {
                    return Ok(x);
                }
                x = next;
            }
        }
    }
}

pub(crate) fn member_knowledge(frame: &dyn Frame, g: &AgentGroup, a: &WorldSet) -> Vec<WorldSet> {
    g.iter().map(|i| frame.knowledge_set(i, a)).collect()
}

pub(crate) fn need_temporal<'a>(
    frame: &'a dyn Frame,
    op: &str,
) -> Result<&'a dyn crate::frame::TemporalStructure, EvalError> {
    frame
        .temporal()
        .ok_or_else(|| EvalError::NoTemporalStructure(op.to_string()))
}

fn fixpoint(
    frame: &dyn Frame,
    x: &str,
    body: &Formula,
    env: &mut Env,
    start: WorldSet,
) -> Result<WorldSet, EvalError> {
    let shadowed = env.insert(x.to_string(), start);
    let result = loop {
        let cur = env.get(x).cloned().expect("just inserted");
        let next = eval(frame, body, env)?;
        if next == cur {
            break Ok(next);
        }
        env.insert(x.to_string(), next);
    };
    match shadowed {
        Some(old) => {
            env.insert(x.to_string(), old);
        }
        None => {
            env.remove(x);
        }
    }
    result
}

/// Checks that `var` occurs only positively (under an even number of
/// negations, never under `<->`) in `f`. Appendix A's syntactic
/// monotonicity condition. Shared by the tree-walking evaluator (checked
/// at each binder during evaluation) and the compiler (checked once at
/// compile time).
pub(crate) fn check_positive(f: &Formula, var: &str) -> Result<(), EvalError> {
    fn occurs_free(f: &Formula, var: &str) -> bool {
        match f {
            Formula::Var(x) => x == var,
            Formula::Gfp(x, body) | Formula::Lfp(x, body) => x != var && occurs_free(body, var),
            _ => {
                let mut found = false;
                f.for_each_child(|c| found |= occurs_free(c, var));
                found
            }
        }
    }
    fn walk(f: &Formula, var: &str, positive: bool) -> Result<(), EvalError> {
        match f {
            Formula::Var(x) => {
                if x == var && !positive {
                    return Err(EvalError::NonMonotone(var.to_string()));
                }
                Ok(())
            }
            Formula::Not(a) => walk(a, var, !positive),
            Formula::Implies(a, b) => {
                walk(a, var, !positive)?;
                walk(b, var, positive)
            }
            Formula::Iff(a, b) => {
                // Mixed polarity: reject any free occurrence.
                if occurs_free(a, var) || occurs_free(b, var) {
                    return Err(EvalError::NonMonotone(var.to_string()));
                }
                Ok(())
            }
            Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
                if x == var {
                    Ok(()) // shadowed
                } else {
                    walk(body, var, positive)
                }
            }
            _ => {
                // All remaining operators are monotone in every argument.
                let mut result = Ok(());
                f.for_each_child(|c| {
                    if result.is_ok() {
                        result = walk(c, var, positive);
                    }
                });
                result
            }
        }
    }
    walk(f, var, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use hm_kripke::{AgentGroup, AgentId, ModelBuilder};

    /// Three-world chain: agent 0 merges {w0,w1}, agent 1 merges {w1,w2};
    /// p at w0, w1.
    fn chain() -> hm_kripke::KripkeModel {
        let mut b = ModelBuilder::new(2);
        for i in 0..3 {
            b.add_world(format!("w{i}"));
        }
        let p = b.atom("p");
        b.set_atom(p, WorldId::new(0), true);
        b.set_atom(p, WorldId::new(1), true);
        b.set_partition_by_key(AgentId::new(0), |w| w.index().max(1));
        b.set_partition_by_key(AgentId::new(1), |w| w.index().min(1));
        b.build()
    }

    fn ws(n: usize, ids: &[usize]) -> WorldSet {
        WorldSet::from_iter_len(n, ids.iter().map(|&i| WorldId::new(i)))
    }

    #[test]
    fn boolean_clauses() {
        let m = chain();
        let p = Formula::atom("p");
        assert_eq!(evaluate(&m, &p).unwrap(), ws(3, &[0, 1]));
        assert_eq!(evaluate(&m, &Formula::not(p.clone())).unwrap(), ws(3, &[2]));
        assert_eq!(evaluate(&m, &Formula::tt()).unwrap(), ws(3, &[0, 1, 2]));
        assert_eq!(evaluate(&m, &Formula::ff()).unwrap(), ws(3, &[]));
        let q_impl = Formula::implies(p.clone(), p.clone());
        assert!(is_valid(&m, &q_impl).unwrap());
        let iff = Formula::iff(p.clone(), Formula::not(p));
        assert!(evaluate(&m, &iff).unwrap().is_empty());
    }

    #[test]
    fn knowledge_clauses() {
        let m = chain();
        let p = Formula::atom("p");
        // Agent 0 merges {w0,w1} (both p) and {w2} (¬p): knows p at w0,w1.
        let k0 = Formula::knows(AgentId::new(0), p.clone());
        assert_eq!(evaluate(&m, &k0).unwrap(), ws(3, &[0, 1]));
        // Agent 1 merges {w1,w2}: knows p only at w0.
        let k1 = Formula::knows(AgentId::new(1), p.clone());
        assert_eq!(evaluate(&m, &k1).unwrap(), ws(3, &[0]));
        let g = AgentGroup::all(2);
        // E p = {w0}; E² p = ∅ (agent 0 at w0 considers w1 where ¬Ep).
        assert_eq!(
            evaluate(&m, &Formula::everyone(g.clone(), p.clone())).unwrap(),
            ws(3, &[0])
        );
        assert_eq!(
            evaluate(&m, &Formula::everyone_k(g.clone(), 2, p.clone())).unwrap(),
            ws(3, &[])
        );
        // S p = {w0, w1}; D p: joint partition is discrete, so D p = p.
        assert_eq!(
            evaluate(&m, &Formula::someone(g.clone(), p.clone())).unwrap(),
            ws(3, &[0, 1])
        );
        assert_eq!(
            evaluate(&m, &Formula::distributed(g.clone(), p.clone())).unwrap(),
            ws(3, &[0, 1])
        );
        // C p = ∅ (the chain connects all worlds, w2 has ¬p).
        assert!(evaluate(&m, &Formula::common(g, p)).unwrap().is_empty());
    }

    #[test]
    fn common_matches_gfp_form() {
        for seed in 0..15 {
            let m = hm_kripke::random_model(seed, hm_kripke::RandomModelSpec::default());
            let g = AgentGroup::all(m.num_agents());
            let p = Formula::atom("q0");
            let direct = evaluate(&m, &Formula::common(g.clone(), p.clone())).unwrap();
            let gfp = evaluate(&m, &Formula::common_as_gfp(g, p)).unwrap();
            assert_eq!(direct, gfp, "seed {seed}");
        }
    }

    #[test]
    fn lfp_reachability() {
        // µX. p ∨ S_G X computes "someone could come to know … " — on the
        // chain it saturates to all worlds reachable from p-worlds via
        // possibility. Here we just check it terminates above the lfp base.
        let m = chain();
        let g = AgentGroup::all(2);
        let f = Formula::lfp(
            "X",
            Formula::or([Formula::atom("p"), Formula::someone(g, Formula::var("X"))]),
        );
        let out = evaluate(&m, &f).unwrap();
        assert!(ws(3, &[0, 1]).is_subset(&out));
    }

    #[test]
    fn gfp_true_is_full_lfp_false_is_empty() {
        let m = chain();
        assert!(evaluate(&m, &Formula::gfp("X", Formula::var("X")))
            .unwrap()
            .is_full());
        assert!(evaluate(&m, &Formula::lfp("X", Formula::var("X")))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn errors() {
        let m = chain();
        assert_eq!(
            evaluate(&m, &Formula::atom("zap")),
            Err(EvalError::UnknownAtom("zap".into()))
        );
        assert_eq!(
            evaluate(&m, &Formula::var("X")),
            Err(EvalError::UnboundVar("X".into()))
        );
        assert_eq!(
            evaluate(&m, &Formula::gfp("X", Formula::not(Formula::var("X")))),
            Err(EvalError::NonMonotone("X".into()))
        );
        assert_eq!(
            evaluate(&m, &Formula::knows(AgentId::new(9), Formula::tt())),
            Err(EvalError::AgentOutOfRange(9))
        );
        assert_eq!(
            evaluate(&m, &Formula::next(Formula::tt())),
            Err(EvalError::NoTemporalStructure("next".into()))
        );
        // Error display is non-empty for all variants.
        for e in [
            EvalError::UnknownAtom("a".into()),
            EvalError::UnboundVar("X".into()),
            EvalError::NonMonotone("X".into()),
            EvalError::NoTemporalStructure("next".into()),
            EvalError::AgentOutOfRange(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn positivity_checker() {
        // X under implication antecedent: negative.
        let bad = Formula::gfp("X", Formula::implies(Formula::var("X"), Formula::atom("p")));
        assert!(matches!(
            evaluate(&chain(), &bad),
            Err(EvalError::NonMonotone(_))
        ));
        // X under two raw negations: positive — fine. (Built via the enum
        // because the `not` constructor collapses double negation.)
        let ok = Formula::Gfp(
            "X".into(),
            Formula::Not(Formula::Not(Formula::var("X")).arc()).arc(),
        )
        .arc();
        assert!(evaluate(&chain(), &ok).is_ok());
        // X under iff: rejected even on the positive side.
        let iff_bad = Formula::Gfp(
            "X".into(),
            Formula::Iff(Formula::var("X"), Formula::tt()).arc(),
        )
        .arc();
        assert!(matches!(
            evaluate(&chain(), &iff_bad),
            Err(EvalError::NonMonotone(_))
        ));
        // Shadowing: inner binder rebinds X, outer gfp is fine.
        let shadow = Formula::gfp(
            "X",
            Formula::and([Formula::atom("p"), Formula::gfp("X", Formula::var("X"))]),
        );
        assert!(evaluate(&chain(), &shadow).is_ok());
    }

    #[test]
    fn nested_fixpoints_restore_environment() {
        // νX.(p ∧ νY.(X ∧ Y)) — inner body mentions outer X.
        let f = Formula::gfp(
            "X",
            Formula::and([
                Formula::atom("p"),
                Formula::gfp("Y", Formula::and([Formula::var("X"), Formula::var("Y")])),
            ]),
        );
        let out = evaluate(&chain(), &f).unwrap();
        assert_eq!(out, ws(3, &[0, 1]));
    }

    #[test]
    fn fast_path_agrees_with_compiled_across_threshold() {
        // Build ladders K0 K1 K0 … p straddling COMPILE_THRESHOLD so both
        // the tree-walking fast path and the compiled path are exercised,
        // and check them against each other explicitly.
        let m = chain();
        for depth in 0..2 * crate::COMPILE_THRESHOLD {
            let mut f = Formula::atom("p");
            for i in 0..depth {
                f = Formula::knows(AgentId::new(i % 2), f);
            }
            assert_eq!(f.node_count(), depth + 1);
            let via_evaluate = evaluate(&m, &f).unwrap();
            let via_tree = evaluate_tree(&m, &f).unwrap();
            let via_compiled = crate::compile::compile(&f).unwrap().eval(&m).unwrap();
            assert_eq!(via_evaluate, via_tree, "depth {depth}");
            assert_eq!(via_evaluate, via_compiled, "depth {depth}");
        }
        // Errors surface identically on the fast path.
        assert_eq!(
            evaluate(&m, &Formula::atom("zap")),
            Err(EvalError::UnknownAtom("zap".into()))
        );
    }

    #[test]
    fn holds_at_and_validity() {
        let m = chain();
        let p = Formula::atom("p");
        assert!(holds_at(&m, &p, WorldId::new(0)).unwrap());
        assert!(!holds_at(&m, &p, WorldId::new(2)).unwrap());
        assert!(!is_valid(&m, &p).unwrap());
        // Knowledge axiom instance: K0 p -> p is valid.
        let a1 = Formula::implies(Formula::knows(AgentId::new(0), p.clone()), p);
        assert!(is_valid(&m, &a1).unwrap());
    }
}
