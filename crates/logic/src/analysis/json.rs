//! Hand-rolled JSON for [`Diagnostics`] (`hm check --json`).
//!
//! The workspace is fully offline (no serde), so this module carries a
//! minimal writer and a minimal recursive-descent reader, enough for the
//! fixed report schema to round-trip: `from_json(to_json(d)) == d`.
//! `message` and `severity` are emitted for consumers but derived on
//! read; each diagnostic's identity is `(code, payload, path)`.

use super::{DiagKind, Diagnostic, Diagnostics, Facts, Severity};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn opt_usize(out: &mut String, v: Option<usize>) {
    match v {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
}

fn write_diag(out: &mut String, d: &Diagnostic) {
    out.push_str("{\"severity\":");
    esc(
        out,
        match d.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        },
    );
    out.push_str(",\"code\":");
    esc(out, d.code());
    out.push_str(",\"path\":");
    esc(out, d.path());
    out.push_str(",\"message\":");
    esc(out, &d.message());
    match &d.kind {
        DiagKind::UnknownAtom(a) => {
            out.push_str(",\"atom\":");
            esc(out, a);
        }
        DiagKind::AgentOutOfRange(i) => {
            let _ = write!(out, ",\"agent\":{i}");
        }
        DiagKind::UnboundVar(x)
        | DiagKind::NonMonotone(x)
        | DiagKind::ShadowedVar(x)
        | DiagKind::VacuousFixpoint(x) => {
            out.push_str(",\"var\":");
            esc(out, x);
        }
        DiagKind::NoTemporalStructure(op) | DiagKind::NotQuotientSafe(op) => {
            out.push_str(",\"op\":");
            esc(out, op);
        }
        DiagKind::DeadSubformula(why) => {
            out.push_str(",\"detail\":");
            esc(out, why);
        }
        DiagKind::ConstantFormula(v) => {
            let _ = write!(out, ",\"value\":{v}");
        }
        DiagKind::TemporalDepthExceedsHorizon { depth, horizon } => {
            let _ = write!(out, ",\"depth\":{depth},\"horizon\":{horizon}");
        }
    }
    out.push('}');
}

impl Diagnostics {
    /// Serializes the report to one line of JSON. Round-trips through
    /// [`from_json`](Self::from_json).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"errors\":[");
        for (i, d) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_diag(&mut out, d);
        }
        out.push_str("],\"warnings\":[");
        for (i, d) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_diag(&mut out, d);
        }
        out.push_str("],\"facts\":{\"nodes\":");
        let f = &self.facts;
        let _ = write!(
            out,
            "{},\"modal_depth\":{},\"temporal_depth\":{},\"agents\":[",
            f.nodes, f.modal_depth, f.temporal_depth
        );
        for (i, a) in f.agents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{a}");
        }
        out.push_str("],\"atoms\":[");
        for (i, a) in f.atoms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            esc(&mut out, a);
        }
        let _ = write!(out, "],\"quotient_safe\":{},", f.quotient_safe);
        out.push_str("\"quotient_unsafe_path\":");
        match &f.quotient_unsafe {
            Some((path, op)) => {
                esc(&mut out, path);
                out.push_str(",\"quotient_unsafe_op\":");
                esc(&mut out, op);
            }
            None => out.push_str("null,\"quotient_unsafe_op\":null"),
        }
        out.push_str(",\"instructions\":");
        opt_usize(&mut out, f.instructions);
        out.push_str(",\"instructions_simplified\":");
        opt_usize(&mut out, f.instructions_simplified);
        out.push_str(",\"simplified\":");
        esc(&mut out, &f.simplified);
        out.push_str("}}");
        out
    }

    /// Reads a report back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax or schema
    /// problem.
    pub fn from_json(src: &str) -> Result<Diagnostics, String> {
        let v = Value::parse(src)?;
        let errors = v
            .field("errors")?
            .array()?
            .iter()
            .map(read_diag)
            .collect::<Result<Vec<_>, _>>()?;
        let warnings = v
            .field("warnings")?
            .array()?
            .iter()
            .map(read_diag)
            .collect::<Result<Vec<_>, _>>()?;
        let fv = v.field("facts")?;
        let quotient_unsafe = match fv.field("quotient_unsafe_path")? {
            Value::Null => None,
            p => Some((p.string()?, fv.field("quotient_unsafe_op")?.string()?)),
        };
        let facts = Facts {
            nodes: fv.field("nodes")?.usize()?,
            modal_depth: fv.field("modal_depth")?.usize()? as u32,
            temporal_depth: fv.field("temporal_depth")?.usize()? as u32,
            agents: fv
                .field("agents")?
                .array()?
                .iter()
                .map(Value::usize)
                .collect::<Result<Vec<_>, _>>()?,
            atoms: fv
                .field("atoms")?
                .array()?
                .iter()
                .map(Value::string)
                .collect::<Result<Vec<_>, _>>()?,
            quotient_safe: fv.field("quotient_safe")?.boolean()?,
            quotient_unsafe,
            instructions: fv.field("instructions")?.opt_usize()?,
            instructions_simplified: fv.field("instructions_simplified")?.opt_usize()?,
            simplified: fv.field("simplified")?.string()?,
        };
        Ok(Diagnostics {
            errors,
            warnings,
            facts,
        })
    }
}

fn read_diag(v: &Value) -> Result<Diagnostic, String> {
    let code = v.field("code")?.string()?;
    let path = v.field("path")?.string()?;
    let var = || v.field("var")?.string();
    let op = || v.field("op")?.string();
    let kind = match code.as_str() {
        "unknown-atom" => DiagKind::UnknownAtom(v.field("atom")?.string()?),
        "agent-out-of-range" => DiagKind::AgentOutOfRange(v.field("agent")?.usize()?),
        "unbound-var" => DiagKind::UnboundVar(var()?),
        "non-monotone" => DiagKind::NonMonotone(var()?),
        "no-temporal-structure" => DiagKind::NoTemporalStructure(op()?),
        "shadowed-var" => DiagKind::ShadowedVar(var()?),
        "dead-subformula" => DiagKind::DeadSubformula(v.field("detail")?.string()?),
        "vacuous-fixpoint" => DiagKind::VacuousFixpoint(var()?),
        "constant-formula" => DiagKind::ConstantFormula(v.field("value")?.boolean()?),
        "temporal-depth-exceeds-horizon" => DiagKind::TemporalDepthExceedsHorizon {
            depth: v.field("depth")?.usize()? as u32,
            horizon: v.field("horizon")?.usize()? as u64,
        },
        "not-quotient-safe" => DiagKind::NotQuotientSafe(op()?),
        other => return Err(format!("unknown diagnostic code `{other}`")),
    };
    Ok(Diagnostic { kind, path })
}

// ---------------------------------------------------------------------------
// Reading: a minimal JSON value
// ---------------------------------------------------------------------------

/// A parsed JSON value, just enough for the report schema.
#[derive(Debug)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(v)
    }

    fn field(&self, name: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`")),
            _ => Err(format!("expected object with field `{name}`")),
        }
    }

    fn array(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(xs) => Ok(xs),
            _ => Err("expected array".to_string()),
        }
    }

    fn string(&self) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            _ => Err("expected string".to_string()),
        }
    }

    fn boolean(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected boolean".to_string()),
        }
    }

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn usize(&self) -> Result<usize, String> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            _ => Err("expected non-negative integer".to_string()),
        }
    }

    fn opt_usize(&self) -> Result<Option<usize>, String> {
        match self {
            Value::Null => Ok(None),
            v => v.usize().map(Some),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.at) {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.at += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b']') {
                    self.at += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    self.skip_ws();
                    xs.push(self.value()?);
                    self.skip_ws();
                    if self.bytes.get(self.at) == Some(&b',') {
                        self.at += 1;
                    } else {
                        self.eat(b']')?;
                        return Ok(Value::Arr(xs));
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.at) == Some(&b'}') {
                    self.at += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    if self.bytes.get(self.at) == Some(&b',') {
                        self.at += 1;
                    } else {
                        self.eat(b'}')?;
                        return Ok(Value::Obj(fields));
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad code point at byte {}", self.at))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Analyzer;
    use super::*;
    use crate::parser::parse;

    #[test]
    fn reports_round_trip() {
        let vocab = vec!["p".to_string(), "q\"uote".to_string()];
        for src in [
            "K0 p -> C{0,1} (p | q)",
            "K9 (zap & $X) | (nu Y. nu Y. $Y) | D{0,1} (p & false)",
            "next next next (p <-> true)",
        ] {
            let d = Analyzer::new()
                .vocabulary(&vocab)
                .num_agents(2)
                .temporal(true)
                .horizon(2)
                .minimize(true)
                .analyze(&parse(src).unwrap());
            let json = d.to_json();
            let back = Diagnostics::from_json(&json).expect(&json);
            assert_eq!(back, d, "{src}");
            // And a second trip is byte-identical.
            assert_eq!(back.to_json(), json, "{src}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Diagnostics::from_json("").is_err());
        assert!(Diagnostics::from_json("{}").is_err());
        assert!(Diagnostics::from_json("{\"errors\":[],\"warnings\":[]}").is_err());
    }
}
