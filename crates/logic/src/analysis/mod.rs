//! Static formula analysis: pre-bind diagnostics, safety inference, and
//! the simplification pass feeding the compiler.
//!
//! [`Analyzer`] walks a [`Formula`] *before* any frame is built or any
//! evaluation runs and produces a [`Diagnostics`] report:
//!
//! - **errors** — problems that make the formula unevaluable (unknown
//!   atoms or agents resolved against the frame's vocabulary without
//!   evaluating, unbound fixed-point variables, non-monotone binders,
//!   temporal operators over a static frame) plus one strict-lint error
//!   the evaluators tolerate (shadowed binders);
//! - **warnings** — legal but suspicious shapes: temporal depth
//!   exceeding the session horizon, dead subformulas under constant
//!   folding, vacuous fixpoints, constant formulas, and non-quotient-safe
//!   operators under `--minimize`, each with a *path* naming the subterm
//!   responsible;
//! - **facts** — inferred structure: node count, modal and temporal
//!   depth, agent footprint, atom vocabulary, quotient safety (with the
//!   first unsafe subterm), and compiled instruction counts before/after
//!   [`simplify`].
//!
//! The analyzer shares its frame-requirement traversal
//! (`visit_frame_reqs`) with [`compile`](crate::compile), which records
//! the very same requirements as bind-time checks: there is one
//! definition of "what this formula asks of a frame", and
//! [`Diagnostics::first_error_as_eval`] reproduces exactly the error a
//! compile-then-bind pipeline reports first.
//!
//! Reports serialize to JSON ([`Diagnostics::to_json`]) and back
//! ([`Diagnostics::from_json`]) for machine consumers (`hm check
//! --json`).

mod json;
mod simplify;

pub use simplify::simplify;

use crate::eval::{check_positive, EvalError};
use crate::formula::Formula;
use crate::frame::Frame;
use hm_kripke::AgentId;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

// ---------------------------------------------------------------------------
// Frame requirements: the traversal shared with the compiler
// ---------------------------------------------------------------------------

/// One thing a formula requires of a frame, discovered in the
/// tree-walking evaluator's pre-order. [`visit_frame_reqs`] is the single
/// definition of that order: the compiler records the stream as bind-time
/// checks, the analyzer resolves it against the frame (or a declared
/// vocabulary) without evaluating.
pub(crate) enum FrameReq<'f> {
    /// Agent index must be `< frame.num_agents()`.
    Agent(AgentId),
    /// Atom must be in the frame's vocabulary.
    Atom(&'f str),
    /// Frame must have run/time structure (operator name for the error).
    Temporal(&'static str),
}

/// Visits every frame requirement of `f` in the tree-walker's discovery
/// order: at each node, agent/group requirements first, then the temporal
/// requirement, then the children left to right.
pub(crate) fn visit_frame_reqs<'f>(f: &'f Formula, visit: &mut impl FnMut(FrameReq<'f>)) {
    use FrameReq::{Agent, Atom, Temporal};
    match f {
        Formula::Atom(name) => visit(Atom(name)),
        Formula::Knows(i, _) => visit(Agent(*i)),
        Formula::EveryoneK(g, _, _)
        | Formula::Someone(g, _)
        | Formula::Distributed(g, _)
        | Formula::Common(g, _) => g.iter().for_each(|i| visit(Agent(i))),
        Formula::Next(_) => visit(Temporal("next")),
        Formula::Eventually(_) => visit(Temporal("even")),
        Formula::Always(_) => visit(Temporal("alw")),
        Formula::Once(_) => visit(Temporal("once")),
        Formula::EveryoneEps(g, _, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("Eeps"));
        }
        Formula::CommonEps(g, _, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("Ceps"));
        }
        Formula::EveryoneEv(g, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("Eev"));
        }
        Formula::CommonEv(g, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("Cev"));
        }
        Formula::KnowsAt(i, _, _) => {
            visit(Agent(*i));
            visit(Temporal("K@"));
        }
        Formula::EveryoneTs(g, _, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("ET"));
        }
        Formula::CommonTs(g, _, _) => {
            g.iter().for_each(|i| visit(Agent(i)));
            visit(Temporal("CT"));
        }
        _ => {}
    }
    // Explicit recursion (rather than `for_each_child`) keeps the `'f`
    // borrow of atom names alive across the traversal.
    match f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_) => {}
        Formula::Not(a)
        | Formula::Knows(_, a)
        | Formula::EveryoneK(_, _, a)
        | Formula::Someone(_, a)
        | Formula::Distributed(_, a)
        | Formula::Common(_, a)
        | Formula::Gfp(_, a)
        | Formula::Lfp(_, a)
        | Formula::Next(a)
        | Formula::Eventually(a)
        | Formula::Always(a)
        | Formula::Once(a)
        | Formula::EveryoneEps(_, _, a)
        | Formula::CommonEps(_, _, a)
        | Formula::EveryoneEv(_, a)
        | Formula::CommonEv(_, a)
        | Formula::KnowsAt(_, _, a)
        | Formula::EveryoneTs(_, _, a)
        | Formula::CommonTs(_, _, a) => visit_frame_reqs(a, visit),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                visit_frame_reqs(x, visit);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            visit_frame_reqs(a, visit);
            visit_frame_reqs(b, visit);
        }
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The formula cannot (or should not) be evaluated as written.
    Error,
    /// The formula evaluates, but something about it looks wrong.
    Warning,
}

/// What a [`Diagnostic`] reports. Severity is a function of the kind
/// (see [`Diagnostic::severity`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagKind {
    /// An atom the frame (or declared vocabulary) does not interpret.
    UnknownAtom(String),
    /// An agent index `>= num_agents`.
    AgentOutOfRange(usize),
    /// A fixed-point variable not bound by any `ν`/`µ`.
    UnboundVar(String),
    /// A binder whose variable occurs negatively (or under `↔`) in its
    /// body.
    NonMonotone(String),
    /// A temporal operator over a frame without run/time structure.
    NoTemporalStructure(String),
    /// A binder reusing the name of an enclosing binder. Slots resolve
    /// shadowing soundly, but the formula rarely means what it says.
    ShadowedVar(String),
    /// A subformula made irrelevant by a constant sibling (the payload
    /// explains which one).
    DeadSubformula(String),
    /// A `ν`/`µ` binder whose variable does not occur in its body.
    VacuousFixpoint(String),
    /// The whole formula simplifies to a constant.
    ConstantFormula(bool),
    /// Nested temporal operators deeper than the session horizon:
    /// the innermost layers run off the end of every truncated run.
    TemporalDepthExceedsHorizon {
        /// Maximum temporal-operator nesting in the formula.
        depth: u32,
        /// The session horizon the formula was analyzed against.
        horizon: u64,
    },
    /// Under `--minimize`, an operator that bars answering on the
    /// bisimulation quotient (payload: the operator head).
    NotQuotientSafe(String),
}

/// One finding of the analyzer: a kind plus the path of operator heads
/// from the root to the offending subterm (empty path = the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    kind: DiagKind,
    path: String,
}

impl Diagnostic {
    fn new(kind: DiagKind, path: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            path: path.into(),
        }
    }

    /// What is being reported.
    pub fn kind(&self) -> &DiagKind {
        &self.kind
    }

    /// `/`-separated operator heads from the root to the offending
    /// subterm; empty for the root itself.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Errors make the formula unevaluable (or flatly wrong); warnings
    /// are advisory.
    pub fn severity(&self) -> Severity {
        match self.kind {
            DiagKind::UnknownAtom(_)
            | DiagKind::AgentOutOfRange(_)
            | DiagKind::UnboundVar(_)
            | DiagKind::NonMonotone(_)
            | DiagKind::NoTemporalStructure(_)
            | DiagKind::ShadowedVar(_) => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// Stable machine-readable code for this kind (the `--json` key).
    pub fn code(&self) -> &'static str {
        match self.kind {
            DiagKind::UnknownAtom(_) => "unknown-atom",
            DiagKind::AgentOutOfRange(_) => "agent-out-of-range",
            DiagKind::UnboundVar(_) => "unbound-var",
            DiagKind::NonMonotone(_) => "non-monotone",
            DiagKind::NoTemporalStructure(_) => "no-temporal-structure",
            DiagKind::ShadowedVar(_) => "shadowed-var",
            DiagKind::DeadSubformula(_) => "dead-subformula",
            DiagKind::VacuousFixpoint(_) => "vacuous-fixpoint",
            DiagKind::ConstantFormula(_) => "constant-formula",
            DiagKind::TemporalDepthExceedsHorizon { .. } => "temporal-depth-exceeds-horizon",
            DiagKind::NotQuotientSafe(_) => "not-quotient-safe",
        }
    }

    /// The human-readable message (without severity or path).
    pub fn message(&self) -> String {
        match &self.kind {
            DiagKind::UnknownAtom(a) => format!("unknown atom `{a}`"),
            DiagKind::AgentOutOfRange(i) => format!("agent {i} out of range"),
            DiagKind::UnboundVar(x) => format!("unbound fixed-point variable `${x}`"),
            DiagKind::NonMonotone(x) => {
                format!("`${x}` occurs non-monotonically in its binder's body")
            }
            DiagKind::NoTemporalStructure(op) => {
                format!("temporal operator `{op}` over a frame without run/time structure")
            }
            DiagKind::ShadowedVar(x) => {
                format!("binder shadows enclosing fixed-point variable `${x}`")
            }
            DiagKind::DeadSubformula(why) => format!("dead subformula: {why}"),
            DiagKind::VacuousFixpoint(x) => {
                format!("vacuous fixpoint: `${x}` does not occur in the binder's body")
            }
            DiagKind::ConstantFormula(v) => format!("formula is constantly `{v}`"),
            DiagKind::TemporalDepthExceedsHorizon { depth, horizon } => format!(
                "temporal depth {depth} exceeds the session horizon {horizon}: \
                 the innermost operators run off the end of every run"
            ),
            DiagKind::NotQuotientSafe(op) => format!(
                "`{op}` is not bisimulation-invariant: the query cannot be \
                 answered on the minimized quotient"
            ),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.code(), self.message())?;
        if !self.path.is_empty() {
            write!(f, " (at {})", self.path)?;
        }
        Ok(())
    }
}

/// Structure inferred by the analyzer, independent of any diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Facts {
    /// Number of AST nodes.
    pub nodes: usize,
    /// Maximum nesting of knowledge/temporal operators (`E^k` counts `k`).
    pub modal_depth: u32,
    /// Maximum nesting of temporal operators only.
    pub temporal_depth: u32,
    /// Agent indices mentioned anywhere, sorted.
    pub agents: Vec<usize>,
    /// Atom names mentioned anywhere, sorted.
    pub atoms: Vec<String>,
    /// `true` if the formula may be answered on a bisimulation quotient.
    pub quotient_safe: bool,
    /// When not quotient-safe: `(path, operator head)` of the first
    /// subterm that breaks safety, in pre-order.
    pub quotient_unsafe: Option<(String, String)>,
    /// Compiled instruction count (`None` when the formula does not
    /// compile).
    pub instructions: Option<usize>,
    /// Instruction count after [`simplify`].
    pub instructions_simplified: Option<usize>,
    /// The simplified formula, rendered.
    pub simplified: String,
}

/// The analyzer's report for one formula: errors, warnings, and inferred
/// facts. Produce one with [`Analyzer::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    errors: Vec<Diagnostic>,
    warnings: Vec<Diagnostic>,
    facts: Facts,
}

impl Diagnostics {
    /// Errors, in the order a compile-then-bind pipeline would discover
    /// them: structural errors (unbound variables, non-monotone binders)
    /// in pre-order first, then frame errors in bind order.
    pub fn errors(&self) -> &[Diagnostic] {
        &self.errors
    }

    /// Warnings, in discovery order.
    pub fn warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }

    /// The inferred facts.
    pub fn facts(&self) -> &Facts {
        &self.facts
    }

    /// `true` when there are no errors and no warnings.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.warnings.is_empty()
    }

    /// `true` when any error was reported.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// The error a compile-then-bind pipeline ([`compile`](crate::compile)
    /// followed by [`bind`](crate::CompiledFormula::bind)) would report,
    /// or `None` if that pipeline succeeds. Strict-lint errors (shadowed
    /// binders) have no [`EvalError`] counterpart and are skipped: they
    /// do not stop evaluation.
    pub fn first_error_as_eval(&self) -> Option<EvalError> {
        self.errors.iter().find_map(|d| match &d.kind {
            DiagKind::UnknownAtom(a) => Some(EvalError::UnknownAtom(a.clone())),
            DiagKind::AgentOutOfRange(i) => Some(EvalError::AgentOutOfRange(*i)),
            DiagKind::UnboundVar(x) => Some(EvalError::UnboundVar(x.clone())),
            DiagKind::NonMonotone(x) => Some(EvalError::NonMonotone(x.clone())),
            DiagKind::NoTemporalStructure(op) => Some(EvalError::NoTemporalStructure(op.clone())),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// Builder for a static analysis over one formula.
///
/// The analyzer resolves frame requirements against whatever is known:
/// a full [`Frame`] (everything known), or any subset of a declared atom
/// vocabulary, agent count, temporal capability, and horizon (the
/// scenario-surface path of `hm check`, where no frame is ever built).
/// Unknown aspects are simply not checked.
///
/// # Examples
///
/// ```
/// use hm_logic::{analysis::Analyzer, parse};
/// let vocab = vec!["sent".to_string()];
/// let f = parse("K0 snet")?; // typo
/// let report = Analyzer::new()
///     .vocabulary(&vocab)
///     .num_agents(2)
///     .analyze(&f);
/// assert!(report.has_errors());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Default)]
pub struct Analyzer<'a> {
    frame: Option<&'a dyn Frame>,
    vocabulary: Option<&'a [String]>,
    num_agents: Option<usize>,
    temporal: Option<bool>,
    horizon: Option<u64>,
    minimize: bool,
}

impl<'a> Analyzer<'a> {
    /// An analyzer that knows nothing about the frame: only structural
    /// diagnostics and facts are produced.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Resolve requirements against `frame`: its vocabulary, agent
    /// count, temporal capability, and (unless overridden) the horizon
    /// implied by its longest run.
    pub fn frame(mut self, frame: &'a dyn Frame) -> Self {
        self.frame = Some(frame);
        self
    }

    /// Declare the atom vocabulary (used when no frame is set).
    pub fn vocabulary(mut self, atoms: &'a [String]) -> Self {
        self.vocabulary = Some(atoms);
        self
    }

    /// Declare the number of agents (used when no frame is set).
    pub fn num_agents(mut self, n: usize) -> Self {
        self.num_agents = Some(n);
        self
    }

    /// Declare whether the frame has run/time structure (used when no
    /// frame is set).
    pub fn temporal(mut self, has: bool) -> Self {
        self.temporal = Some(has);
        self
    }

    /// Declare the session horizon (time indices run `0..=horizon`).
    pub fn horizon(mut self, h: u64) -> Self {
        self.horizon = Some(h);
        self
    }

    /// Analyze as if the session ran with `--minimize`: non-quotient-safe
    /// operators are reported (as warnings, with a path).
    pub fn minimize(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Runs the analysis. Never evaluates the formula and never fails:
    /// problems become diagnostics.
    pub fn analyze(&self, f: &Formula) -> Diagnostics {
        let mut walk = Walk {
            path: Vec::new(),
            scope: Vec::new(),
            structural: Vec::new(),
            warnings: Vec::new(),
            agents: BTreeSet::new(),
            atom_first: HashMap::new(),
            agent_first: HashMap::new(),
            temporal_first: None,
            unsafe_first: None,
            temporal_depth: 0,
            max_temporal_depth: 0,
            nodes: 0,
        };
        walk.visit(f);

        let mut errors = walk.structural;
        errors.extend(self.frame_errors(
            f,
            &walk.atom_first,
            &walk.agent_first,
            walk.temporal_first.as_deref().unwrap_or(""),
        ));
        let mut warnings = walk.warnings;

        if let Some(horizon) = self.known_horizon() {
            let depth = walk.max_temporal_depth;
            if u64::from(depth) > horizon {
                warnings.push(Diagnostic::new(
                    DiagKind::TemporalDepthExceedsHorizon { depth, horizon },
                    "",
                ));
            }
        }
        if self.minimize {
            if let Some((path, op)) = &walk.unsafe_first {
                warnings.push(Diagnostic::new(
                    DiagKind::NotQuotientSafe(op.clone()),
                    path.clone(),
                ));
            }
        }

        let simplified = simplify(&f.clone().arc());
        if let Formula::True | Formula::False = &*simplified {
            if !matches!(f, Formula::True | Formula::False) {
                warnings.push(Diagnostic::new(
                    DiagKind::ConstantFormula(matches!(&*simplified, Formula::True)),
                    "",
                ));
            }
        }

        let facts = Facts {
            nodes: walk.nodes,
            modal_depth: f.modal_depth(),
            temporal_depth: walk.max_temporal_depth,
            agents: walk.agents.into_iter().collect(),
            atoms: {
                let mut atoms: Vec<String> = walk.atom_first.keys().cloned().collect();
                atoms.sort();
                atoms
            },
            quotient_safe: walk.unsafe_first.is_none(),
            quotient_unsafe: walk.unsafe_first,
            instructions: crate::compile(f).ok().map(|c| c.num_ops()),
            instructions_simplified: crate::compile(&simplified).ok().map(|c| c.num_ops()),
            simplified: simplified.to_string(),
        };

        Diagnostics {
            errors,
            warnings,
            facts,
        }
    }

    /// Replays the formula's frame requirements (in bind order, via
    /// [`visit_frame_reqs`]) against whatever is known, reporting each
    /// distinct failure once, at its first occurrence.
    fn frame_errors(
        &self,
        f: &Formula,
        atom_first: &HashMap<String, String>,
        agent_first: &HashMap<usize, String>,
        temporal_path: &str,
    ) -> Vec<Diagnostic> {
        let num_agents = self.known_num_agents();
        let temporal = self.known_temporal();
        let mut atom_known: HashMap<&str, Option<bool>> = HashMap::new();
        let mut reported_atoms: HashSet<String> = HashSet::new();
        let mut reported_agents: HashSet<usize> = HashSet::new();
        let mut reported_temporal = false;
        let mut out = Vec::new();
        visit_frame_reqs(f, &mut |req| match req {
            FrameReq::Agent(i) => {
                let i = i.index();
                if num_agents.is_some_and(|n| i >= n) && reported_agents.insert(i) {
                    let path = agent_first.get(&i).cloned().unwrap_or_default();
                    out.push(Diagnostic::new(DiagKind::AgentOutOfRange(i), path));
                }
            }
            FrameReq::Atom(name) => {
                let known = *atom_known
                    .entry(name)
                    .or_insert_with(|| self.atom_known(name));
                if known == Some(false) && reported_atoms.insert(name.to_string()) {
                    let path = atom_first.get(name).cloned().unwrap_or_default();
                    out.push(Diagnostic::new(
                        DiagKind::UnknownAtom(name.to_string()),
                        path,
                    ));
                }
            }
            FrameReq::Temporal(op) => {
                if temporal == Some(false) && !reported_temporal {
                    reported_temporal = true;
                    out.push(Diagnostic::new(
                        DiagKind::NoTemporalStructure(op.to_string()),
                        temporal_path.to_string(),
                    ));
                }
            }
        });
        out
    }

    fn known_num_agents(&self) -> Option<usize> {
        self.num_agents
            .or_else(|| self.frame.map(Frame::num_agents))
    }

    fn known_temporal(&self) -> Option<bool> {
        self.temporal
            .or_else(|| self.frame.map(|fr| fr.temporal().is_some()))
    }

    fn known_horizon(&self) -> Option<u64> {
        self.horizon.or_else(|| {
            let ts = self.frame?.temporal()?;
            (0..ts.num_runs())
                .map(|r| ts.run_len(r).saturating_sub(1))
                .max()
        })
    }

    /// `Some(true)`/`Some(false)` when the vocabulary is known, `None`
    /// otherwise.
    fn atom_known(&self, name: &str) -> Option<bool> {
        if let Some(fr) = self.frame {
            return Some(match fr.atom_table() {
                Some(t) => t.atom_index(name).is_some(),
                None => fr.atom_set(name).is_some(),
            });
        }
        self.vocabulary.map(|v| v.iter().any(|a| a == name))
    }
}

// ---------------------------------------------------------------------------
// The structural walk
// ---------------------------------------------------------------------------

/// State of the single structural pre-order pass: paths, binder scope,
/// structural errors, warnings, and the raw material for facts.
struct Walk {
    path: Vec<String>,
    scope: Vec<String>,
    structural: Vec<Diagnostic>,
    warnings: Vec<Diagnostic>,
    agents: BTreeSet<usize>,
    /// First (pre-order) path of each atom / agent — the path frame
    /// errors are reported at.
    atom_first: HashMap<String, String>,
    agent_first: HashMap<usize, String>,
    temporal_first: Option<String>,
    /// `(path, operator head)` of the first quotient-unsafe subterm.
    unsafe_first: Option<(String, String)>,
    temporal_depth: u32,
    max_temporal_depth: u32,
    nodes: usize,
}

/// The operator head of a non-leaf node, used as one path segment.
/// Children of `∧`/`∨`/`→`/`↔` carry their child index.
fn seg(f: &Formula, child: usize) -> String {
    match f {
        Formula::Not(_) => "not".to_string(),
        Formula::And(_) => format!("and[{child}]"),
        Formula::Or(_) => format!("or[{child}]"),
        Formula::Implies(..) => format!("impl[{child}]"),
        Formula::Iff(..) => format!("iff[{child}]"),
        Formula::Knows(i, _) => format!("K{}", i.index()),
        Formula::EveryoneK(g, 1, _) => format!("E{g}"),
        Formula::EveryoneK(g, k, _) => format!("E^{k}{g}"),
        Formula::Someone(g, _) => format!("S{g}"),
        Formula::Distributed(g, _) => format!("D{g}"),
        Formula::Common(g, _) => format!("C{g}"),
        Formula::Gfp(x, _) => format!("nu {x}"),
        Formula::Lfp(x, _) => format!("mu {x}"),
        Formula::Next(_) => "next".to_string(),
        Formula::Eventually(_) => "even".to_string(),
        Formula::Always(_) => "alw".to_string(),
        Formula::Once(_) => "once".to_string(),
        Formula::EveryoneEps(g, e, _) => format!("Eeps[{e}]{g}"),
        Formula::CommonEps(g, e, _) => format!("Ceps[{e}]{g}"),
        Formula::EveryoneEv(g, _) => format!("Eev{g}"),
        Formula::CommonEv(g, _) => format!("Cev{g}"),
        Formula::KnowsAt(i, t, _) => format!("K{}@[{t}]", i.index()),
        Formula::EveryoneTs(g, t, _) => format!("ET[{t}]{g}"),
        Formula::CommonTs(g, t, _) => format!("CT[{t}]{g}"),
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_) => {
            unreachable!("leaves are not path segments")
        }
    }
}

impl Walk {
    fn here(&self) -> String {
        self.path.join("/")
    }

    fn warn(&mut self, kind: DiagKind) {
        let at = self.here();
        self.warnings.push(Diagnostic::new(kind, at));
    }

    fn error(&mut self, kind: DiagKind) {
        let at = self.here();
        self.structural.push(Diagnostic::new(kind, at));
    }

    // Empty groups need no diagnostic: `AgentGroup::new` rejects them, so
    // every group reaching the analyzer is non-empty by construction.
    fn group_agents(&mut self, g: &hm_kripke::AgentGroup) {
        for i in g.iter() {
            self.agents.insert(i.index());
            let at = self.here();
            self.agent_first.entry(i.index()).or_insert(at);
        }
    }

    fn visit(&mut self, f: &Formula) {
        self.nodes += 1;
        let temporal = f.is_temporal_op();
        if temporal {
            self.temporal_depth += 1;
            self.max_temporal_depth = self.max_temporal_depth.max(self.temporal_depth);
            if self.temporal_first.is_none() {
                self.temporal_first = Some(self.here());
            }
        }
        if (temporal || matches!(f, Formula::Distributed(..))) && self.unsafe_first.is_none() {
            self.unsafe_first = Some((self.here(), seg(f, 0)));
        }
        match f {
            Formula::Atom(name) => {
                let at = self.here();
                self.atom_first.entry(name.clone()).or_insert(at);
            }
            Formula::Var(x) if !self.scope.iter().any(|b| b == x) => {
                self.error(DiagKind::UnboundVar(x.clone()));
            }
            Formula::Knows(i, _) | Formula::KnowsAt(i, _, _) => {
                self.agents.insert(i.index());
                let at = self.here();
                self.agent_first.entry(i.index()).or_insert(at);
            }
            Formula::EveryoneK(g, _, _)
            | Formula::Someone(g, _)
            | Formula::Distributed(g, _)
            | Formula::Common(g, _)
            | Formula::EveryoneEps(g, _, _)
            | Formula::CommonEps(g, _, _)
            | Formula::EveryoneEv(g, _)
            | Formula::CommonEv(g, _)
            | Formula::EveryoneTs(g, _, _)
            | Formula::CommonTs(g, _, _) => self.group_agents(g),
            Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
                if self.scope.iter().any(|b| b == x) {
                    self.error(DiagKind::ShadowedVar(x.clone()));
                }
                if check_positive(body, x).is_err() {
                    self.error(DiagKind::NonMonotone(x.clone()));
                }
                if !simplify::occurs_free(body, x) {
                    self.warn(DiagKind::VacuousFixpoint(x.clone()));
                }
            }
            Formula::And(xs) => {
                if let Some(i) = xs.iter().position(|x| matches!(**x, Formula::False)) {
                    self.warn(DiagKind::DeadSubformula(format!(
                        "conjunct {i} is `false`, so the conjunction is constantly false"
                    )));
                }
            }
            Formula::Or(xs) => {
                if let Some(i) = xs.iter().position(|x| matches!(**x, Formula::True)) {
                    self.warn(DiagKind::DeadSubformula(format!(
                        "disjunct {i} is `true`, so the disjunction is constantly true"
                    )));
                }
            }
            Formula::Implies(a, b) => {
                if matches!(**a, Formula::False) {
                    self.warn(DiagKind::DeadSubformula(
                        "the antecedent is `false`, so the implication is constantly true"
                            .to_string(),
                    ));
                } else if matches!(**b, Formula::True) {
                    self.warn(DiagKind::DeadSubformula(
                        "the consequent is `true`, so the implication is constantly true"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }

        // Recurse with path and scope maintenance.
        let binder = match f {
            Formula::Gfp(x, _) | Formula::Lfp(x, _) => Some(x.clone()),
            _ => None,
        };
        if let Some(x) = binder {
            self.scope.push(x);
        }
        let mut child = 0usize;
        f.for_each_child(|c| {
            self.path.push(seg(f, child));
            self.visit(c);
            self.path.pop();
            child += 1;
        });
        if matches!(f, Formula::Gfp(..) | Formula::Lfp(..)) {
            self.scope.pop();
        }
        if temporal {
            self.temporal_depth -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    use hm_kripke::{AgentId, ModelBuilder, WorldId};

    fn model() -> hm_kripke::KripkeModel {
        let mut b = ModelBuilder::new(2);
        for i in 0..4 {
            b.add_world(format!("w{i}"));
        }
        let p = b.atom("p");
        b.set_atom(p, WorldId::new(0), true);
        b.atom("q");
        b.set_partition_by_key(AgentId::new(0), |w| w.index() / 2);
        b.set_partition_by_key(AgentId::new(1), |w| w.index() % 2);
        b.build()
    }

    fn against_model(src: &str) -> Diagnostics {
        let m = model();
        Analyzer::new().frame(&m).analyze(&parse(src).unwrap())
    }

    #[test]
    fn clean_formula_is_clean() {
        let d = against_model("K0 p -> C{0,1} (p | q)");
        assert!(d.is_clean(), "{:?}", d);
        assert_eq!(d.first_error_as_eval(), None);
        assert!(d.facts().quotient_safe);
        assert_eq!(d.facts().agents, vec![0, 1]);
        assert_eq!(d.facts().atoms, vec!["p".to_string(), "q".to_string()]);
    }

    #[test]
    fn frame_errors_match_compile_then_bind() {
        let m = model();
        for src in [
            "K0 zap",
            "K9 p",
            "K9 zap", // agent error wins: checked before the child
            "next p",
            "$X",
            "nu X. !$X",
            "K0 ($Y & K9 p)", // structural before frame errors
        ] {
            let f = parse(src).unwrap();
            let direct = crate::compile(&f)
                .and_then(|c| c.bind(&m).map(|_| ()))
                .err();
            let analyzed = Analyzer::new().frame(&m).analyze(&f).first_error_as_eval();
            assert_eq!(analyzed, direct, "{src}");
        }
    }

    #[test]
    fn paths_name_the_offending_subterm() {
        let d = against_model("p & K0 (q | !zap)");
        let err = &d.errors()[0];
        assert_eq!(err.code(), "unknown-atom");
        assert_eq!(err.path(), "and[1]/K0/or[1]/not");
        let d = against_model("K0 even p");
        // Temporal ops evaluate fine on run-structured frames; this model
        // is static.
        assert_eq!(d.errors()[0].code(), "no-temporal-structure");
        assert_eq!(d.errors()[0].path(), "K0");
    }

    #[test]
    fn strict_lints_do_not_gate_evaluation() {
        let m = model();
        // Shadowed binder: evaluates fine, still an analyzer error.
        let f = parse("nu X. p & (nu X. p & $X) & $X").unwrap();
        let d = Analyzer::new().frame(&m).analyze(&f);
        assert!(d.has_errors());
        assert_eq!(d.errors()[0].code(), "shadowed-var");
        assert_eq!(d.first_error_as_eval(), None);
        // The shadowed formula still compiles, binds and evaluates.
        assert!(crate::compile(&f).unwrap().eval(&m).is_ok());
    }

    #[test]
    fn warnings_for_suspicious_shapes() {
        let codes = |src: &str| -> Vec<&'static str> {
            against_model(src)
                .warnings()
                .iter()
                .map(|d| d.code())
                .collect()
        };
        assert_eq!(
            codes("p & false"),
            vec!["dead-subformula", "constant-formula"]
        );
        assert_eq!(
            codes("false -> p"),
            vec!["dead-subformula", "constant-formula"]
        );
        assert_eq!(codes("nu X. K0 p"), vec!["vacuous-fixpoint"]);
        assert!(codes("K0 p").is_empty());
    }

    #[test]
    fn horizon_warning() {
        let vocab = vec!["p".to_string()];
        let d = Analyzer::new()
            .vocabulary(&vocab)
            .num_agents(2)
            .temporal(true)
            .horizon(2)
            .analyze(&parse("next next next p").unwrap());
        assert_eq!(d.warnings()[0].code(), "temporal-depth-exceeds-horizon");
        assert_eq!(d.facts().temporal_depth, 3);
    }

    #[test]
    fn minimize_reports_unsafe_path() {
        let d = Analyzer::new().analyze(&parse("p & D{0,1} q").unwrap());
        assert!(d.is_clean(), "no minimize, no warning");
        let m = model();
        let d = Analyzer::new()
            .frame(&m)
            .minimize(true)
            .analyze(&parse("p & D{0,1} q").unwrap());
        assert_eq!(d.warnings()[0].code(), "not-quotient-safe");
        assert_eq!(d.warnings()[0].path(), "and[1]");
        assert!(!d.facts().quotient_safe);
    }

    #[test]
    fn facts_count_instructions() {
        let d = against_model("C{0} C{0} p");
        let f = d.facts();
        assert!(f.instructions_simplified.unwrap() < f.instructions.unwrap());
        assert_eq!(f.simplified, "K0 p");
    }

    #[test]
    fn unknown_aspects_are_not_checked() {
        let d = Analyzer::new().analyze(&parse("K7 mystery & even p").unwrap());
        assert!(!d.has_errors());
    }
}
