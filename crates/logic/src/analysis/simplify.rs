//! The semantics-preserving simplification pass.
//!
//! [`simplify`] rewrites a formula bottom-up into an equivalent one that
//! compiles to at most as many instructions — strictly fewer whenever a
//! rule fires. Every rule is justified either by the evaluator's own
//! structure (Boolean folding) or by the [`Frame`]
//! contract (crates/logic/src/frame.rs): `knowledge_set` and
//! `distributed_set` are kernels of equivalence relations (S5), and the
//! overridable `everyone_set`/`common_set` must agree with their
//! documented defaults. Rules that would depend on anything more (the
//! ε/◇/T variants' interval edge cases, `next` at truncated run ends,
//! `D_G` over singletons) are deliberately omitted.
//!
//! [`Frame`]: crate::Frame

use crate::formula::{Formula, F};
use hm_kripke::AgentId;

/// Simplifies a formula, preserving its verdict on every frame honouring
/// the [`Frame`](crate::Frame) contract.
///
/// The rules, applied bottom-up (children first):
///
/// - **Boolean folding** through `¬`, `∧`, `∨`, `→`, `↔`: constants
///   propagate (`φ ∧ false → false`, `true → ψ ⇒ ψ`, `φ ↔ false → ¬φ`,
///   …); the [`Formula`] constructors already flatten and drop units.
/// - **Knowledge of constants**: `K_i true → true`, `K_i false → false`
///   (an equivalence-class kernel maps the full set to itself and the
///   empty set to itself), and likewise for `E^k_G`, `S_G`, `D_G`, `C_G`
///   (groups are non-empty by [`AgentGroup`](hm_kripke::AgentGroup)
///   construction, so the kernel argument always applies).
/// - **S5 idempotence**: `K_i K_i φ → K_i φ` (kernels are idempotent).
/// - **Singleton groups**: `E^k_{i} φ`, `S_{i} φ`, `C_{i} φ → K_i φ` —
///   for one agent, every iterate of `E` collapses to `K_i` and the
///   common-knowledge fixed point converges to `K_i φ` by the T and 4
///   axioms, both guaranteed by the S5 kernel contract.
/// - **Fixed points**: `νX.$X → true`, `µX.$X → false`; a binder whose
///   variable is no longer free in the (simplified) body is the fixed
///   point of a constant map and unrolls to the body itself.
/// - **Temporal constants**: `◇`, `□` and `once` of `true`/`false` fold
///   (each quantifies over a non-empty set of points including *now*).
///   `next` does **not** fold (`next true` is false at the final point
///   of a truncated run), and the ε/◇/T group variants are never
///   rewritten.
pub fn simplify(f: &F) -> F {
    match &**f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_) => f.clone(),
        Formula::Not(a) => Formula::not(simplify(a)),
        Formula::And(xs) => {
            let xs: Vec<F> = xs.iter().map(simplify).collect();
            if xs.iter().any(|x| matches!(**x, Formula::False)) {
                Formula::ff()
            } else {
                Formula::and(xs)
            }
        }
        Formula::Or(xs) => {
            let xs: Vec<F> = xs.iter().map(simplify).collect();
            if xs.iter().any(|x| matches!(**x, Formula::True)) {
                Formula::tt()
            } else {
                Formula::or(xs)
            }
        }
        Formula::Implies(a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (&*a, &*b) {
                (Formula::False, _) | (_, Formula::True) => Formula::tt(),
                (Formula::True, _) => b,
                (_, Formula::False) => Formula::not(a),
                _ => Formula::implies(a, b),
            }
        }
        Formula::Iff(a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            match (&*a, &*b) {
                (Formula::True, _) => b,
                (_, Formula::True) => a,
                (Formula::False, _) => Formula::not(b),
                (_, Formula::False) => Formula::not(a),
                _ => Formula::iff(a, b),
            }
        }
        Formula::Knows(i, a) => knows(*i, simplify(a)),
        Formula::EveryoneK(g, k, a) => {
            let a = simplify(a);
            if *k == 0 {
                return a; // E^0 is the identity (see the evaluators).
            }
            match &*a {
                Formula::True => Formula::tt(),
                Formula::False => Formula::ff(),
                _ if g.len() == 1 => knows(g.iter().next().expect("len 1"), a),
                _ => Formula::everyone_k(g.clone(), *k, a),
            }
        }
        Formula::Someone(g, a) => {
            let a = simplify(a);
            match &*a {
                Formula::True => Formula::tt(),
                Formula::False => Formula::ff(),
                _ if g.len() == 1 => knows(g.iter().next().expect("len 1"), a),
                _ => Formula::someone(g.clone(), a),
            }
        }
        Formula::Distributed(g, a) => {
            let a = simplify(a);
            match &*a {
                // Kernels fix the full and the empty set, whatever the
                // joint partition is; no other D_G rewrite is
                // frame-independent.
                Formula::True => Formula::tt(),
                Formula::False => Formula::ff(),
                _ => Formula::distributed(g.clone(), a),
            }
        }
        Formula::Common(g, a) => {
            let a = simplify(a);
            match &*a {
                Formula::True => Formula::tt(),
                Formula::False => Formula::ff(),
                _ if g.len() == 1 => knows(g.iter().next().expect("len 1"), a),
                _ => Formula::common(g.clone(), a),
            }
        }
        Formula::Gfp(x, body) => {
            let body = simplify(body);
            if matches!(&*body, Formula::Var(y) if y == x) {
                Formula::tt() // νX.X: iteration from the full set stays put.
            } else if !occurs_free(&body, x) {
                body // fixed point of a constant map
            } else {
                Formula::gfp(x.clone(), body)
            }
        }
        Formula::Lfp(x, body) => {
            let body = simplify(body);
            if matches!(&*body, Formula::Var(y) if y == x) {
                Formula::ff()
            } else if !occurs_free(&body, x) {
                body
            } else {
                Formula::lfp(x.clone(), body)
            }
        }
        Formula::Next(a) => Formula::next(simplify(a)),
        Formula::Eventually(a) => temporal_const(simplify(a), Formula::eventually),
        Formula::Always(a) => temporal_const(simplify(a), Formula::always),
        Formula::Once(a) => temporal_const(simplify(a), Formula::once),
        Formula::EveryoneEps(g, e, a) => Formula::everyone_eps(g.clone(), *e, simplify(a)),
        Formula::CommonEps(g, e, a) => Formula::common_eps(g.clone(), *e, simplify(a)),
        Formula::EveryoneEv(g, a) => Formula::everyone_ev(g.clone(), simplify(a)),
        Formula::CommonEv(g, a) => Formula::common_ev(g.clone(), simplify(a)),
        Formula::KnowsAt(i, t, a) => Formula::knows_at(*i, *t, simplify(a)),
        Formula::EveryoneTs(g, t, a) => Formula::everyone_ts(g.clone(), *t, simplify(a)),
        Formula::CommonTs(g, t, a) => Formula::common_ts(g.clone(), *t, simplify(a)),
    }
}

/// `K_i` over an already-simplified operand: folds constants and
/// collapses `K_i K_i φ` (S5 idempotence).
fn knows(i: AgentId, a: F) -> F {
    match &*a {
        Formula::True => Formula::tt(),
        Formula::False => Formula::ff(),
        Formula::Knows(j, _) if *j == i => a,
        _ => Formula::knows(i, a),
    }
}

/// `◇`/`□`/`once` over an already-simplified operand: each quantifies
/// over a set of points that always contains the current one, so
/// constants pass through; anything else keeps the operator.
fn temporal_const(a: F, wrap: impl FnOnce(F) -> F) -> F {
    match &*a {
        Formula::True => Formula::tt(),
        Formula::False => Formula::ff(),
        _ => wrap(a),
    }
}

/// `true` iff `var` occurs free in `f`.
pub(crate) fn occurs_free(f: &Formula, var: &str) -> bool {
    match f {
        Formula::Var(x) => x == var,
        Formula::Gfp(x, body) | Formula::Lfp(x, body) => x != var && occurs_free(body, var),
        _ => {
            let mut found = false;
            f.for_each_child(|c| found |= occurs_free(c, var));
            found
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn s(src: &str) -> String {
        simplify(&parse(src).unwrap()).to_string()
    }

    #[test]
    fn boolean_folding() {
        assert_eq!(s("p & false & q"), "false");
        assert_eq!(s("p | true"), "true");
        assert_eq!(s("true -> p"), "p");
        assert_eq!(s("p -> false"), "!p");
        assert_eq!(s("false -> p"), "true");
        assert_eq!(s("p <-> false"), "!p");
        assert_eq!(s("p <-> true"), "p");
        assert_eq!(s("!(p & false)"), "true");
    }

    #[test]
    fn knowledge_of_constants_and_idempotence() {
        assert_eq!(s("K0 (p | !p)"), "K0 (p | !p)");
        assert_eq!(s("K0 (p & false)"), "false");
        assert_eq!(s("K0 true"), "true");
        assert_eq!(s("K0 K0 K0 p"), "K0 p");
        assert_eq!(s("K0 K1 p"), "K0 K1 p");
        assert_eq!(s("E{0,1} true"), "true");
        assert_eq!(s("S{0,1} false"), "false");
        assert_eq!(s("D{0,1} true"), "true");
        assert_eq!(s("C{0,1} false"), "false");
    }

    #[test]
    fn singleton_groups_collapse_to_knows() {
        assert_eq!(s("C{1} p"), "K1 p");
        assert_eq!(s("E^4{0} p"), "K0 p");
        assert_eq!(s("S{0} p"), "K0 p");
        assert_eq!(s("C{0} C{0} p"), "K0 p");
        // D_G is left alone even for singletons: the joint view is the
        // frame's business.
        assert_eq!(s("D{0} p"), "D{p0} p");
    }

    #[test]
    fn fixpoints_unroll() {
        assert_eq!(s("nu X. $X"), "true");
        assert_eq!(s("mu X. $X"), "false");
        assert_eq!(s("nu X. K0 p"), "K0 p");
        assert_eq!(s("nu X. ($X | true)"), "true");
        assert_eq!(s("nu X. E{0,1} (p & $X)"), "nu X. E{p0,p1} (p & $X)");
    }

    #[test]
    fn temporal_rules_are_conservative() {
        assert_eq!(s("even false"), "false");
        assert_eq!(s("alw true"), "true");
        assert_eq!(s("once (p & false)"), "false");
        // `next true` is false at the last point of a truncated run.
        assert_eq!(s("next true"), "next true");
        assert_eq!(s("Eeps[2]{0,1} true"), "Eeps[2]{p0,p1} true");
    }
}
