//! An epistemic µ-calculus model checker.
//!
//! This crate implements the logical language and semantics of Halpern &
//! Moses, *Knowledge and Common Knowledge in a Distributed Environment*
//! (PODC '84; journal version JACM 1990): the group-knowledge operators
//! of Section 3, the
//! view-based Kripke semantics of Section 6, the attainable variants
//! `C^ε`/`C^◇`/`C^T` of Sections 11–12, and — following Appendix A — a
//! propositional logic of knowledge with explicit greatest/least fixed
//! points, evaluated exactly over finite frames.
//!
//! - [`Formula`] is the AST; [`parse`] reads the textual syntax; `Display`
//!   round-trips through the parser.
//! - [`Frame`] abstracts the finite structures formulas are checked
//!   against (Kripke models from `hm-kripke`; interpreted systems from
//!   `hm-runs` add the [`TemporalStructure`] needed by `E^ε`, `E^◇`, `E^T`
//!   and the run-temporal operators).
//! - [`evaluate`]/[`holds_at`]/[`is_valid`] run the model checker;
//!   [`compile`] lowers a formula once to a flat instruction buffer
//!   ([`CompiledFormula`]) for repeated evaluation ([`EvalCache`] keeps
//!   compiled+bound formulas across calls), and [`evaluate_tree`] keeps
//!   the tree-walking reference semantics.
//! - [`analysis`] lints formulas *before* bind/eval: [`Analyzer`]
//!   produces typed [`Diagnostics`] (unknown atoms/agents, unbound
//!   variables, dead subformulas, quotient-safety paths, …) and
//!   [`simplify`] rewrites formulas into equivalents that compile to
//!   fewer instructions.
//! - [`axioms`] turns Proposition 1 (S5), the fixed-point axiom C1, the
//!   induction rule C2, and Lemma 2 into executable checks.
//!
//! # Example: the coordinated-attack ladder
//!
//! ```
//! use hm_logic::{parse, evaluate};
//! use hm_kripke::{ModelBuilder, AgentId};
//!
//! // Tiny two-point system: in w0 the message arrived, in w1 it did not.
//! // B (agent 1) can tell; A (agent 0) cannot.
//! let mut b = ModelBuilder::new(2);
//! let w0 = b.add_world("delivered");
//! let w1 = b.add_world("lost");
//! let d = b.atom("delivered");
//! b.set_atom(d, w0, true);
//! b.set_partition_by_key(AgentId::new(0), |_| ());
//! let m = b.build();
//!
//! // B knows the message was delivered, A does not know that B knows.
//! let kb = parse("K1 delivered")?;
//! let kakb = parse("K0 K1 delivered")?;
//! assert!(evaluate(&m, &kb)?.contains(w0));
//! assert!(!evaluate(&m, &kakb)?.contains(w0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod axioms;
mod compile;
mod eval;
mod formula;
mod frame;
mod interval;
pub mod temporal;

mod parser;

pub use analysis::{simplify, Analyzer, DiagKind, Diagnostic, Diagnostics, Facts, Severity};
pub use compile::{compile, Bound, CompiledFormula, EvalCache};
pub use eval::{evaluate, evaluate_tree, holds_at, is_valid, EvalError, COMPILE_THRESHOLD};
pub use formula::{Formula, F};
pub use frame::{AtomTable, Frame, TemporalStructure};
pub use interval::{evaluate_interval, IntervalSet};
pub use parser::{parse, ParseError};
