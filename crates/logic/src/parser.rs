//! A small text syntax for formulas.
//!
//! Intended for examples, tests and the experiment driver; the grammar
//! mirrors the `Display` output of [`Formula`], so printing and parsing
//! round-trip.
//!
//! ```text
//! formula := iff
//! iff     := impl ('<->' impl)*
//! impl    := or ('->' impl)?                  (right associative)
//! or      := and ('|' and)*
//! and     := unary ('&' unary)*
//! unary   := '!' unary | modal unary | 'nu' VAR '.' formula
//!          | 'mu' VAR '.' formula | 'true' | 'false' | '$' VAR | ATOM
//!          | '(' formula ')'
//! modal   := 'K' NAT ('@' '[' NAT ']')?
//!          | 'E' ('^' NAT)? group | 'S' group | 'D' group | 'C' group
//!          | 'Eeps' '[' NAT ']' group | 'Ceps' '[' NAT ']' group
//!          | 'Eev' group | 'Cev' group
//!          | 'ET' '[' NAT ']' group | 'CT' '[' NAT ']' group
//!          | 'next' | 'even' | 'alw' | 'once'
//! group   := '{' ('p'? NAT) (',' 'p'? NAT)* '}'
//! ```
//!
//! The identifiers `true false nu mu next even alw once` and the modal
//! heads `K<digits> E S D C Eeps Ceps Eev Cev ET CT` are reserved and
//! cannot be used as atom names.

use crate::formula::{Formula, F};
use hm_kripke::{AgentGroup, AgentId};
use std::fmt;

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from text.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, including trailing garbage.
///
/// # Examples
///
/// ```
/// use hm_logic::parse;
/// let f = parse("C{0,1} (muddy0 | muddy1)")?;
/// assert_eq!(f.to_string(), "C{p0,p1} (muddy0 | muddy1)");
/// # Ok::<(), hm_logic::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<F, ParseError> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
    };
    let f = p.formula()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        if self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphabetic() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric()
                    || self.src[self.pos] == b'_'
                    || self.src[self.pos] == b'\'')
            {
                self.pos += 1;
            }
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        } else {
            None
        }
    }

    fn nat(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        String::from_utf8_lossy(&self.src[start..self.pos])
            .parse()
            .map_err(|_| self.err("number too large"))
    }

    fn bracketed_nat(&mut self) -> Result<u64, ParseError> {
        self.expect("[")?;
        let n = self.nat()?;
        self.expect("]")?;
        Ok(n)
    }

    fn group(&mut self) -> Result<AgentGroup, ParseError> {
        self.expect("{")?;
        let mut members = Vec::new();
        loop {
            self.skip_ws();
            // Optional `p` prefix, as printed by Display.
            if self.src.get(self.pos) == Some(&b'p')
                && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
            {
                self.pos += 1;
            }
            members.push(AgentId::new(self.nat()? as usize));
            if !self.eat(",") {
                break;
            }
        }
        self.expect("}")?;
        Ok(AgentGroup::new(members))
    }

    fn formula(&mut self) -> Result<F, ParseError> {
        let mut lhs = self.implication()?;
        while self.eat("<->") {
            let rhs = self.implication()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn implication(&mut self) -> Result<F, ParseError> {
        let lhs = self.disjunction()?;
        // Look ahead: `->` but not `<->` (the `<` is consumed elsewhere).
        if self.eat("->") {
            let rhs = self.implication()?;
            return Ok(Formula::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self) -> Result<F, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<F, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(b'&') {
            self.pos += 1;
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::and(parts)
        })
    }

    fn unary(&mut self) -> Result<F, ParseError> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(b'(') => {
                self.pos += 1;
                let f = self.formula()?;
                self.expect(")")?;
                Ok(f)
            }
            Some(b'$') => {
                self.pos += 1;
                let name = self
                    .ident()
                    .ok_or_else(|| self.err("expected variable name"))?;
                Ok(Formula::var(name))
            }
            Some(_) => self.ident_led(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn ident_led(&mut self) -> Result<F, ParseError> {
        let save = self.pos;
        let id = self.ident().ok_or_else(|| self.err("expected a formula"))?;
        match id.as_str() {
            "true" => Ok(Formula::tt()),
            "false" => Ok(Formula::ff()),
            "nu" | "mu" => {
                let var = self.ident().ok_or_else(|| self.err("expected variable"))?;
                self.expect(".")?;
                let body = self.formula()?;
                Ok(if id == "nu" {
                    Formula::gfp(var, body)
                } else {
                    Formula::lfp(var, body)
                })
            }
            "next" => Ok(Formula::next(self.unary()?)),
            "even" => Ok(Formula::eventually(self.unary()?)),
            "alw" => Ok(Formula::always(self.unary()?)),
            "once" => Ok(Formula::once(self.unary()?)),
            "E" => {
                let k = if self.eat("^") { self.nat()? as u32 } else { 1 };
                if k == 0 {
                    return Err(self.err("E^k requires k >= 1"));
                }
                let g = self.group()?;
                Ok(Formula::everyone_k(g, k, self.unary()?))
            }
            "S" => {
                let g = self.group()?;
                Ok(Formula::someone(g, self.unary()?))
            }
            "D" => {
                let g = self.group()?;
                Ok(Formula::distributed(g, self.unary()?))
            }
            "C" => {
                let g = self.group()?;
                Ok(Formula::common(g, self.unary()?))
            }
            "Eeps" => {
                let e = self.bracketed_nat()?;
                let g = self.group()?;
                Ok(Formula::everyone_eps(g, e, self.unary()?))
            }
            "Ceps" => {
                let e = self.bracketed_nat()?;
                let g = self.group()?;
                Ok(Formula::common_eps(g, e, self.unary()?))
            }
            "Eev" => {
                let g = self.group()?;
                Ok(Formula::everyone_ev(g, self.unary()?))
            }
            "Cev" => {
                let g = self.group()?;
                Ok(Formula::common_ev(g, self.unary()?))
            }
            "ET" => {
                let t = self.bracketed_nat()?;
                let g = self.group()?;
                Ok(Formula::everyone_ts(g, t, self.unary()?))
            }
            "CT" => {
                let t = self.bracketed_nat()?;
                let g = self.group()?;
                Ok(Formula::common_ts(g, t, self.unary()?))
            }
            _ if id.starts_with('K')
                && id[1..].chars().all(|c| c.is_ascii_digit())
                && id.len() > 1 =>
            {
                let agent = AgentId::new(
                    id[1..]
                        .parse::<usize>()
                        .map_err(|_| self.err("agent index too large"))?,
                );
                if self.eat("@") {
                    let t = self.bracketed_nat()?;
                    Ok(Formula::knows_at(agent, t, self.unary()?))
                } else {
                    Ok(Formula::knows(agent, self.unary()?))
                }
            }
            _ => {
                // Plain atom — but reject if followed by `{` (likely a
                // misspelled modal head).
                if self.peek() == Some(b'{') {
                    self.pos = save;
                    return Err(self.err(format!("`{id}` is not a modal operator")));
                }
                Ok(Formula::atom(id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) {
        let f = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = f.to_string();
        let f2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(f, f2, "round trip {src} → {printed}");
    }

    #[test]
    fn atoms_and_booleans() {
        assert_eq!(parse("p").unwrap(), Formula::atom("p"));
        assert_eq!(parse("true").unwrap(), Formula::tt());
        assert_eq!(
            parse("p & q & r").unwrap(),
            Formula::and([Formula::atom("p"), Formula::atom("q"), Formula::atom("r")])
        );
        assert_eq!(
            parse("!p | q").unwrap(),
            Formula::or([Formula::not(Formula::atom("p")), Formula::atom("q")])
        );
    }

    #[test]
    fn precedence() {
        // & binds tighter than |, which binds tighter than ->, then <->.
        let f = parse("a & b | c -> d <-> e").unwrap();
        assert_eq!(f.to_string(), "a & b | c -> d <-> e");
        round_trip("a & b | c -> d <-> e");
        // Right-associative implication.
        let g = parse("a -> b -> c").unwrap();
        assert_eq!(g.to_string(), "a -> (b -> c)");
    }

    #[test]
    fn modalities() {
        let f = parse("K0 K1 p").unwrap();
        assert_eq!(
            f,
            Formula::knows(
                AgentId::new(0),
                Formula::knows(AgentId::new(1), Formula::atom("p"))
            )
        );
        let f = parse("E^3{0,1} p").unwrap();
        assert_eq!(
            f,
            Formula::everyone_k(AgentGroup::all(2), 3, Formula::atom("p"))
        );
        let f = parse("Ceps[2]{p0,p1} sent").unwrap();
        assert_eq!(
            f,
            Formula::common_eps(AgentGroup::all(2), 2, Formula::atom("sent"))
        );
        let f = parse("K1@[5] p").unwrap();
        assert_eq!(f, Formula::knows_at(AgentId::new(1), 5, Formula::atom("p")));
    }

    #[test]
    fn fixpoints() {
        let f = parse("nu X. E{0,1} (p & $X)").unwrap();
        assert_eq!(
            f,
            Formula::common_as_gfp(AgentGroup::all(2), Formula::atom("p"))
        );
        round_trip("mu Y. p | S{0,2} $Y");
    }

    #[test]
    fn round_trips() {
        for src in [
            "C{0,1} (p | q)",
            "K0 p -> C{p0,p1} (p | q)",
            "nu X. E{p0,p1} (p & $X)",
            "Eeps[3]{0,1,2} m & Cev{0,1} m",
            "ET[7]{0,1} v <-> CT[7]{0,1} v",
            "next (even p) & alw q | once r",
            "D{0,1} p & S{0,1} q & E^2{0,1} r",
            "!(p -> q) & !!r",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("p q").is_err(), "trailing garbage");
        assert!(parse("(p").is_err(), "unclosed paren");
        assert!(parse("E{} p").is_err(), "empty group");
        assert!(parse("E^0{0} p").is_err(), "E^0 rejected");
        assert!(parse("Q{0} p").is_err(), "unknown modal head");
        assert!(parse("$").is_err(), "bare dollar");
        assert!(parse("nu X p").is_err(), "missing dot");
        let e = parse("&").unwrap_err();
        assert!(e.to_string().contains("parse error"));
    }

    #[test]
    fn k_ident_vs_atom() {
        // `K0` is a modality; `Kx` and `K` alone are atoms.
        assert_eq!(
            parse("K0 p").unwrap(),
            Formula::knows(AgentId::new(0), Formula::atom("p"))
        );
        assert_eq!(parse("Kx").unwrap(), Formula::atom("Kx"));
        assert_eq!(parse("K").unwrap(), Formula::atom("K"));
    }
}
