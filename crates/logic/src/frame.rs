//! Evaluation frames: what a formula is checked against.
//!
//! A [`Frame`] is anything that supplies a finite universe of worlds, a
//! valuation for ground atoms, and the knowledge operators; a finite S5
//! [`KripkeModel`] is the canonical instance. Frames with *run/time*
//! structure (the interpreted systems of Sections 5–6, built in `hm-runs`)
//! additionally expose a [`TemporalStructure`], enabling the temporal
//! operators of Sections 11–12.

use hm_kripke::{AgentGroup, AgentId, KripkeModel, WorldId, WorldSet};

/// A finite evaluation frame for the static (non-temporal) fragment.
///
/// Implementors must guarantee that `knowledge_set` and `distributed_set`
/// are the kernels of equivalence relations (S5); the default
/// `common_set` computes the greatest fixed point of `X ↦ E_G(A ∩ X)` from
/// `knowledge_set` and may be overridden with a faster characterisation.
pub trait Frame {
    /// Number of worlds (points) in the frame.
    fn num_worlds(&self) -> usize;

    /// Number of agents.
    fn num_agents(&self) -> usize;

    /// The set of worlds where the named ground atom holds, or `None` if
    /// the atom is not part of this frame's vocabulary.
    fn atom_set(&self, name: &str) -> Option<WorldSet>;

    /// `K_i(A)`.
    fn knowledge_set(&self, i: AgentId, a: &WorldSet) -> WorldSet;

    /// `D_G(A)` (kernel of the joint view).
    fn distributed_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet;

    /// `E_G(A) = ⋂_{i∈G} K_i(A)`.
    fn everyone_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        let mut out = WorldSet::full(self.num_worlds());
        for i in g.iter() {
            out.intersect_with(&self.knowledge_set(i, a));
        }
        out
    }

    /// `C_G(A)`, by default as the greatest fixed point of
    /// `X ↦ E_G(A ∩ X)`.
    fn common_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        let mut x = WorldSet::full(self.num_worlds());
        loop {
            let next = self.everyone_set(g, &a.intersection(&x));
            if next == x {
                return x;
            }
            x = next;
        }
    }

    /// Run/time structure, when this frame has it. Frames returning `None`
    /// reject temporal operators at evaluation time.
    fn temporal(&self) -> Option<&dyn TemporalStructure> {
        None
    }

    /// The frame's dense atom table, when it has one. The default shim
    /// returns `None`, meaning the frame only supports name-based lookup
    /// through [`atom_set`](Self::atom_set) — existing frames keep working
    /// unchanged; frames with an interned vocabulary (Kripke models,
    /// interpreted systems) expose it so compiled formulas resolve atoms
    /// by id instead of by `&str`.
    fn atom_table(&self) -> Option<&dyn AtomTable> {
        None
    }
}

/// A dense atom vocabulary: the id-based fast path of a [`Frame`] used by
/// compiled evaluation ([`compile`](crate::compile)). Ids are
/// frame-local indices `0..` with no meaning across frames.
pub trait AtomTable {
    /// Resolves an atom name to its frame-local dense id, if interpreted.
    fn atom_index(&self, name: &str) -> Option<usize>;

    /// The set of worlds where the atom with dense id `id` holds.
    ///
    /// # Panics
    ///
    /// May panic if `id` was not produced by
    /// [`atom_index`](Self::atom_index) on the same frame.
    fn atom_set_by_id(&self, id: usize) -> WorldSet;
}

/// Run/time structure over the worlds of a frame.
///
/// Worlds are grouped into *runs*; within a run, worlds sit at dense time
/// indices `0..run_len`. Truncation of the paper's infinite runs at a
/// finite horizon is the caller's responsibility (choose horizons larger
/// than the modal depth under test).
pub trait TemporalStructure {
    /// Number of runs.
    fn num_runs(&self) -> usize;

    /// The run containing world `w`.
    fn run_of(&self, w: WorldId) -> usize;

    /// The time index of world `w` within its run.
    fn time_of(&self, w: WorldId) -> u64;

    /// The world at `(run, t)`, if `t < run_len(run)`.
    fn point(&self, run: usize, t: u64) -> Option<WorldId>;

    /// Number of points in `run` (times are `0..run_len`).
    fn run_len(&self, run: usize) -> u64;

    /// Agent `i`'s clock reading at `w`; `None` when the agent has not yet
    /// woken up or the system has no clocks.
    fn clock(&self, i: AgentId, w: WorldId) -> Option<u64>;
}

impl Frame for KripkeModel {
    fn num_worlds(&self) -> usize {
        KripkeModel::num_worlds(self)
    }

    fn num_agents(&self) -> usize {
        KripkeModel::num_agents(self)
    }

    fn atom_set(&self, name: &str) -> Option<WorldSet> {
        self.atom_id(name).map(|a| KripkeModel::atom_set(self, a))
    }

    fn knowledge_set(&self, i: AgentId, a: &WorldSet) -> WorldSet {
        self.knowledge(i, a)
    }

    fn distributed_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        self.distributed_knowledge(g, a)
    }

    fn common_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        // Fast path: G-reachability components (Section 6).
        self.common_knowledge(g, a)
    }

    fn atom_table(&self) -> Option<&dyn AtomTable> {
        Some(self)
    }
}

impl AtomTable for KripkeModel {
    fn atom_index(&self, name: &str) -> Option<usize> {
        self.atom_id(name).map(|a| a.index())
    }

    fn atom_set_by_id(&self, id: usize) -> WorldSet {
        KripkeModel::atom_set(self, id.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_kripke::ModelBuilder;

    #[test]
    fn kripke_model_implements_frame() {
        let mut b = ModelBuilder::new(2);
        let w0 = b.add_world("w0");
        b.add_world("w1");
        let p = b.atom("p");
        b.set_atom(p, w0, true);
        b.set_partition_by_key(AgentId::new(0), |_| ());
        let m = b.build();
        let f: &dyn Frame = &m;
        assert_eq!(f.num_worlds(), 2);
        assert_eq!(f.num_agents(), 2);
        assert!(f.atom_set("p").is_some());
        assert!(f.atom_set("zz").is_none());
        assert!(f.temporal().is_none());
        let pa = f.atom_set("p").unwrap();
        // Default everyone_set equals intersection of knowledge.
        let e = f.everyone_set(&AgentGroup::all(2), &pa);
        assert!(e.is_empty());
    }

    #[test]
    fn default_common_matches_reachability_override() {
        for seed in 0..10 {
            let m = hm_kripke::random_model(seed, hm_kripke::RandomModelSpec::default());
            let g = AgentGroup::all(m.num_agents());
            let a = Frame::atom_set(&m, "q0").unwrap();
            // Call the trait default explicitly via a shim frame that does
            // not override common_set.
            struct Shim<'a>(&'a KripkeModel);
            impl Frame for Shim<'_> {
                fn num_worlds(&self) -> usize {
                    Frame::num_worlds(self.0)
                }
                fn num_agents(&self) -> usize {
                    Frame::num_agents(self.0)
                }
                fn atom_set(&self, name: &str) -> Option<WorldSet> {
                    Frame::atom_set(self.0, name)
                }
                fn knowledge_set(&self, i: AgentId, a: &WorldSet) -> WorldSet {
                    self.0.knowledge(i, a)
                }
                fn distributed_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
                    self.0.distributed_knowledge(g, a)
                }
            }
            assert_eq!(
                Shim(&m).common_set(&g, &a),
                Frame::common_set(&m, &g, &a),
                "seed {seed}"
            );
        }
    }
}
