//! Set-valued temporal operators over a [`TemporalStructure`].
//!
//! These are the clauses (h)/(i) of Appendix A and the timestamped
//! operators of Section 12, computed per run. All functions take the
//! already-computed per-agent knowledge sets as input, so the evaluator
//! controls how `K_i` itself is interpreted.

use crate::frame::TemporalStructure;
use hm_kripke::{AgentGroup, AgentId, WorldId, WorldSet};

/// `○(A)`: worlds whose successor point (same run, next time) is in `A`.
/// The last point of a (truncated) run has no successor and never
/// satisfies `○`.
pub fn next_set(ts: &dyn TemporalStructure, a: &WorldSet) -> WorldSet {
    let mut out = WorldSet::empty(a.universe_len());
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        for t in 0..len.saturating_sub(1) {
            let here = ts.point(run, t).expect("t < len");
            let next = ts.point(run, t + 1).expect("t+1 < len");
            if a.contains(next) {
                out.insert(here);
            }
        }
    }
    out
}

/// `◇(A)`: worlds `(r,t)` such that `A` holds at some `(r,t')` with
/// `t' ≥ t` (footnote 7 of the paper).
pub fn eventually_set(ts: &dyn TemporalStructure, a: &WorldSet) -> WorldSet {
    let mut out = WorldSet::empty(a.universe_len());
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        let mut seen = false;
        for t in (0..len).rev() {
            let w = ts.point(run, t).expect("t < len");
            seen |= a.contains(w);
            if seen {
                out.insert(w);
            }
        }
    }
    out
}

/// `□(A)`: worlds `(r,t)` such that `A` holds at every `(r,t')` with
/// `t' ≥ t`. Dual of [`eventually_set`].
pub fn always_set(ts: &dyn TemporalStructure, a: &WorldSet) -> WorldSet {
    eventually_set(ts, &a.complement()).complement()
}

/// Past operator: worlds `(r,t)` such that `A` holds at some `(r,t')` with
/// `t' ≤ t`. `once(A)` is the canonical *stable* strengthening of `A`
/// ("φ held at some point in the past", Section 11).
pub fn once_set(ts: &dyn TemporalStructure, a: &WorldSet) -> WorldSet {
    let mut out = WorldSet::empty(a.universe_len());
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        let mut seen = false;
        for t in 0..len {
            let w = ts.point(run, t).expect("t < len");
            seen |= a.contains(w);
            if seen {
                out.insert(w);
            }
        }
    }
    out
}

/// `E^ε_G`: worlds `(r,t)` such that there is an interval
/// `I = [t₀, t₀+ε]` with `t ∈ I` and, for every `i ∈ G`, some `tᵢ ∈ I`
/// with `(r,tᵢ) ∈ K_i` (Section 11; `k_sets[j]` is `K_i(φ)` for the `j`-th
/// member of `G`).
///
/// Interval endpoints are clamped to the run: witnesses must be actual
/// points, so size horizons generously (see DESIGN.md).
pub fn everyone_eps_set(
    ts: &dyn TemporalStructure,
    g: &AgentGroup,
    eps: u64,
    k_sets: &[WorldSet],
) -> WorldSet {
    assert_eq!(g.len(), k_sets.len(), "one knowledge set per group member");
    let n = k_sets.first().map(|s| s.universe_len()).unwrap_or_default();
    let mut out = WorldSet::empty(n);
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        // ok[t0] = every member has a witness in [t0, min(t0+eps, len-1)].
        let mut ok = vec![true; len as usize];
        for ks in k_sets {
            // next_wit[t] = earliest t' >= t with K_i at (run, t'), or len.
            let mut next_wit = len;
            let mut wit_at = vec![len; len as usize];
            for t in (0..len).rev() {
                let w = ts.point(run, t).expect("t < len");
                if ks.contains(w) {
                    next_wit = t;
                }
                wit_at[t as usize] = next_wit;
            }
            for t0 in 0..len {
                let hi = (t0 + eps).min(len - 1);
                if wit_at[t0 as usize] > hi {
                    ok[t0 as usize] = false;
                }
            }
        }
        // (r,t) qualifies iff some interval start t0 ∈ [t-eps, t] is ok.
        for t in 0..len {
            let lo = t.saturating_sub(eps);
            let mut hit = false;
            for t0 in lo..=t {
                if ok[t0 as usize] {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.insert(ts.point(run, t).expect("t < len"));
            }
        }
    }
    out
}

/// `E^◇_G`: worlds `(r,t)` such that every member of `G` knows at *some*
/// time of run `r` (the witness time ranges over the whole run, so
/// membership depends only on `r`, not on `t` — Section 11).
pub fn everyone_ev_set(
    ts: &dyn TemporalStructure,
    g: &AgentGroup,
    k_sets: &[WorldSet],
) -> WorldSet {
    assert_eq!(g.len(), k_sets.len(), "one knowledge set per group member");
    let n = k_sets.first().map(|s| s.universe_len()).unwrap_or_default();
    let mut out = WorldSet::empty(n);
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        let all_have_witness = k_sets
            .iter()
            .all(|ks| (0..len).any(|t| ks.contains(ts.point(run, t).expect("t < len"))));
        if all_have_witness {
            for t in 0..len {
                out.insert(ts.point(run, t).expect("t < len"));
            }
        }
    }
    out
}

/// `K_i^T`: worlds `(r,t)` such that at every point of run `r` where `i`'s
/// clock reads `T`, agent `i` knows (Section 12). Like `E^◇`, membership
/// depends only on the run. *Vacuously true* in runs where the clock never
/// reads `T` (the paper's Theorem 12(c) hypothesis rules this out).
pub fn knows_at_set(
    ts: &dyn TemporalStructure,
    i: AgentId,
    stamp: u64,
    k_set: &WorldSet,
) -> WorldSet {
    let n = k_set.universe_len();
    let mut out = WorldSet::empty(n);
    for run in 0..ts.num_runs() {
        let len = ts.run_len(run);
        let mut ok = true;
        for t in 0..len {
            let w = ts.point(run, t).expect("t < len");
            if ts.clock(i, w) == Some(stamp) && !k_set.contains(w) {
                ok = false;
                break;
            }
        }
        if ok {
            for t in 0..len {
                out.insert(ts.point(run, t).expect("t < len"));
            }
        }
    }
    out
}

/// `E^T_G = ⋂_{i∈G} K_i^T` (Section 12).
pub fn everyone_ts_set(
    ts: &dyn TemporalStructure,
    g: &AgentGroup,
    stamp: u64,
    k_sets: &[WorldSet],
) -> WorldSet {
    assert_eq!(g.len(), k_sets.len(), "one knowledge set per group member");
    let n = k_sets.first().map(|s| s.universe_len()).unwrap_or_default();
    let mut out = WorldSet::full(n);
    for (j, i) in g.iter().enumerate() {
        out.intersect_with(&knows_at_set(ts, i, stamp, &k_sets[j]));
    }
    out
}

/// Convenience: the set of all points of `run`.
pub fn run_points(ts: &dyn TemporalStructure, run: usize, universe: usize) -> WorldSet {
    let mut out = WorldSet::empty(universe);
    for t in 0..ts.run_len(run) {
        out.insert(ts.point(run, t).expect("t < len"));
    }
    out
}

/// Convenience: collects the `WorldId`s of a run in time order.
pub fn run_timeline(ts: &dyn TemporalStructure, run: usize) -> Vec<WorldId> {
    (0..ts.run_len(run))
        .map(|t| ts.point(run, t).expect("t < len"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bare grid: `num_runs` runs of equal `len`; world id = run*len + t.
    /// Clock of agent i at (r,t) = t + skew*i (for clock tests).
    pub(crate) struct Grid {
        pub runs: usize,
        pub len: u64,
        pub skew: u64,
    }

    impl TemporalStructure for Grid {
        fn num_runs(&self) -> usize {
            self.runs
        }
        fn run_of(&self, w: WorldId) -> usize {
            w.index() / self.len as usize
        }
        fn time_of(&self, w: WorldId) -> u64 {
            (w.index() % self.len as usize) as u64
        }
        fn point(&self, run: usize, t: u64) -> Option<WorldId> {
            (run < self.runs && t < self.len)
                .then(|| WorldId::new(run * self.len as usize + t as usize))
        }
        fn run_len(&self, _run: usize) -> u64 {
            self.len
        }
        fn clock(&self, i: AgentId, w: WorldId) -> Option<u64> {
            Some(self.time_of(w) + self.skew * i.index() as u64)
        }
    }

    fn ws(n: usize, ids: &[usize]) -> WorldSet {
        WorldSet::from_iter_len(n, ids.iter().map(|&i| WorldId::new(i)))
    }

    #[test]
    fn next_eventually_always_once() {
        // One run of length 4; A = {t=2}.
        let g = Grid {
            runs: 1,
            len: 4,
            skew: 0,
        };
        let a = ws(4, &[2]);
        assert_eq!(next_set(&g, &a), ws(4, &[1]));
        assert_eq!(eventually_set(&g, &a), ws(4, &[0, 1, 2]));
        assert_eq!(once_set(&g, &a), ws(4, &[2, 3]));
        // □A only where A holds through the suffix: nowhere except... A
        // fails at 3, so □A is empty.
        assert!(always_set(&g, &a).is_empty());
        let tail = ws(4, &[2, 3]);
        assert_eq!(always_set(&g, &tail), tail);
    }

    #[test]
    fn next_is_per_run() {
        // Two runs of length 2: A = {(r1, t0)}; ○A must not leak into r0.
        let g = Grid {
            runs: 2,
            len: 2,
            skew: 0,
        };
        let a = ws(4, &[3]); // (r1, t1)
        assert_eq!(next_set(&g, &a), ws(4, &[2]));
    }

    #[test]
    fn everyone_ev_is_run_constant() {
        let g = Grid {
            runs: 2,
            len: 3,
            skew: 0,
        };
        let grp = AgentGroup::all(2);
        // Agent 0 knows at (r0,t2); agent 1 knows at (r0,t0). Run 1: only
        // agent 0 has a witness.
        let k0 = ws(6, &[2, 3]);
        let k1 = ws(6, &[0]);
        let out = everyone_ev_set(&g, &grp, &[k0, k1]);
        assert_eq!(out, ws(6, &[0, 1, 2]), "whole run 0, nothing of run 1");
    }

    #[test]
    fn everyone_eps_interval_semantics() {
        // One run, len 10, ε = 2. Agent 0 knows at t=4, agent 1 at t=6.
        // Interval [4,6] contains both witnesses, so every t ∈ [4,6] is in
        // E^ε; t=3 also qualifies via interval [3,5]? No: agent 1's witness
        // is 6 ∉ [3,5]. But interval [4,6] ∋ t=4..6 only. What about t=7?
        // intervals [5,7],[6,8],[7,9] lack agent 0's witness 4. So {4,5,6}.
        let g = Grid {
            runs: 1,
            len: 10,
            skew: 0,
        };
        let grp = AgentGroup::all(2);
        let k0 = ws(10, &[4]);
        let k1 = ws(10, &[6]);
        let out = everyone_eps_set(&g, &grp, 2, &[k0, k1]);
        assert_eq!(out, ws(10, &[4, 5, 6]));
    }

    #[test]
    fn everyone_eps_zero_is_simultaneous() {
        let g = Grid {
            runs: 1,
            len: 5,
            skew: 0,
        };
        let grp = AgentGroup::all(2);
        let k0 = ws(5, &[1, 2]);
        let k1 = ws(5, &[2, 3]);
        let out = everyone_eps_set(&g, &grp, 0, &[k0.clone(), k1.clone()]);
        assert_eq!(out, k0.intersection(&k1), "ε=0 degenerates to E_G");
    }

    #[test]
    fn everyone_eps_clamps_at_run_end() {
        // Witnesses at the very last point still count for intervals
        // reaching past the horizon.
        let g = Grid {
            runs: 1,
            len: 3,
            skew: 0,
        };
        let grp = AgentGroup::all(1);
        let k0 = ws(3, &[2]);
        let out = everyone_eps_set(&g, &grp, 5, &[k0]);
        assert!(
            out.is_full(),
            "single agent, witness in every wide interval"
        );
    }

    #[test]
    fn knows_at_and_vacuity() {
        // Two runs, len 3, skew 0 (clock == time). Stamp 1.
        let g = Grid {
            runs: 2,
            len: 3,
            skew: 0,
        };
        // Agent 0 knows at (r0, t1) but not (r1, t1).
        let k = ws(6, &[1]);
        let out = knows_at_set(&g, AgentId::new(0), 1, &k);
        assert_eq!(out, ws(6, &[0, 1, 2]));
        // Vacuity: stamp 99 is never read, so every run qualifies.
        let out = knows_at_set(&g, AgentId::new(0), 99, &k);
        assert!(out.is_full());
    }

    #[test]
    fn everyone_ts_uses_each_agents_clock() {
        // skew 1: agent 1's clock = t+1. Stamp 2 — agent 0 reads 2 at t=2,
        // agent 1 reads 2 at t=1.
        let g = Grid {
            runs: 1,
            len: 3,
            skew: 1,
        };
        let grp = AgentGroup::all(2);
        let k0 = ws(3, &[2]);
        let k1 = ws(3, &[1]);
        let out = everyone_ts_set(&g, &grp, 2, &[k0.clone(), k1]);
        assert!(out.is_full());
        // Move agent 1's knowledge off its stamp-2 point: fails.
        let out = everyone_ts_set(&g, &grp, 2, &[k0, ws(3, &[2])]);
        assert!(out.is_empty());
    }

    #[test]
    fn run_points_and_timeline() {
        let g = Grid {
            runs: 2,
            len: 3,
            skew: 0,
        };
        assert_eq!(run_points(&g, 1, 6), ws(6, &[3, 4, 5]));
        assert_eq!(
            run_timeline(&g, 1),
            vec![WorldId::new(3), WorldId::new(4), WorldId::new(5)]
        );
    }
}
