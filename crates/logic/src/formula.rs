//! The formula language.
//!
//! The language of Halpern–Moses: ground atoms closed under Boolean
//! connectives, the knowledge operators of Section 3 (`K_i`, `D_G`, `S_G`,
//! `E_G`, `E^k_G`, `C_G`), the temporal variants of Sections 11–12
//! (`E^ε/C^ε`, `E^◇/C^◇`, `E^T/C^T`, plus `○`, `◇`, `□`), and the explicit
//! greatest/least fixed-point binders of Appendix A (`νX.φ`, `µX.φ`).

use hm_kripke::{AgentGroup, AgentId};
use std::fmt;
use std::sync::Arc;

/// A formula of the epistemic µ-calculus.
///
/// Formulas are immutable trees with shared (`Arc`) children; build them
/// with the constructor methods, which keep the tree in a lightly
/// normalised form (e.g. flattened conjunctions).
///
/// # Examples
///
/// ```
/// use hm_logic::Formula;
/// use hm_kripke::AgentGroup;
/// let g = AgentGroup::all(2);
/// let f = Formula::common(g, Formula::atom("attack"));
/// assert_eq!(f.to_string(), "C{p0,p1} attack");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A ground atomic proposition, referenced by name.
    Atom(String),
    /// A fixed-point variable (bound by [`Formula::Gfp`] or [`Formula::Lfp`]).
    Var(String),
    /// Negation `¬φ`.
    Not(Arc<Formula>),
    /// Conjunction `φ₁ ∧ … ∧ φₙ` (empty conjunction is `true`).
    And(Vec<Arc<Formula>>),
    /// Disjunction `φ₁ ∨ … ∨ φₙ` (empty disjunction is `false`).
    Or(Vec<Arc<Formula>>),
    /// Material implication `φ ⊃ ψ`.
    Implies(Arc<Formula>, Arc<Formula>),
    /// Biconditional `φ ≡ ψ`.
    Iff(Arc<Formula>, Arc<Formula>),
    /// `K_i φ`: agent `i` knows `φ`.
    Knows(AgentId, Arc<Formula>),
    /// `E_G^k φ`: everyone in `G` knows, iterated `k ≥ 1` times.
    EveryoneK(AgentGroup, u32, Arc<Formula>),
    /// `S_G φ`: someone in `G` knows `φ`.
    Someone(AgentGroup, Arc<Formula>),
    /// `D_G φ`: `φ` is distributed knowledge in `G`.
    Distributed(AgentGroup, Arc<Formula>),
    /// `C_G φ`: `φ` is common knowledge in `G`.
    Common(AgentGroup, Arc<Formula>),
    /// `νX.φ`: greatest fixed point of `X ↦ φ` (Appendix A).
    Gfp(String, Arc<Formula>),
    /// `µX.φ`: least fixed point of `X ↦ φ`.
    Lfp(String, Arc<Formula>),
    /// `○φ`: `φ` holds at the next point of the same run (temporal frames
    /// only; false at the final point of a truncated run).
    Next(Arc<Formula>),
    /// `◇φ`: `φ` holds at some point of the same run at the current time or
    /// later (the paper's footnote-7 `♦`).
    Eventually(Arc<Formula>),
    /// `□φ`: `φ` holds at every point of the same run from now on.
    Always(Arc<Formula>),
    /// `◇?φ` — `φ` held at some point of the same run at the current time
    /// or *earlier* (past operator; used to express stability and
    /// "once knew").
    Once(Arc<Formula>),
    /// `E^ε_G φ`: within some ε-interval containing now, each member of `G`
    /// knows `φ` at some point of the interval (Section 11).
    EveryoneEps(AgentGroup, u64, Arc<Formula>),
    /// `C^ε_G φ`: ε-common knowledge, the greatest fixed point of
    /// `X ≡ E^ε_G(φ ∧ X)`.
    CommonEps(AgentGroup, u64, Arc<Formula>),
    /// `E^◇_G φ`: every member of `G` knows `φ` at *some* time in the run
    /// (Section 11; note the witness time ranges over the whole run).
    EveryoneEv(AgentGroup, Arc<Formula>),
    /// `C^◇_G φ`: eventual common knowledge, the greatest fixed point of
    /// `X ≡ E^◇_G(φ ∧ X)`.
    CommonEv(AgentGroup, Arc<Formula>),
    /// `K_i^T φ`: at (local clock) time `T`, agent `i` knows `φ`
    /// (Section 12). Vacuously true in runs where `i`'s clock never
    /// reads `T`.
    KnowsAt(AgentId, u64, Arc<Formula>),
    /// `E^T_G φ = ⋀_{i∈G} K_i^T φ`: timestamped everyone-knows.
    EveryoneTs(AgentGroup, u64, Arc<Formula>),
    /// `C^T_G φ`: timestamped common knowledge, the greatest fixed point of
    /// `X ≡ E^T_G(φ ∧ X)`.
    CommonTs(AgentGroup, u64, Arc<Formula>),
}

/// Shared handle to a formula.
pub type F = Arc<Formula>;

impl Formula {
    /// Wraps `self` in an `Arc`.
    pub fn arc(self) -> F {
        Arc::new(self)
    }

    /// The atom `name`.
    pub fn atom(name: impl Into<String>) -> F {
        Formula::Atom(name.into()).arc()
    }

    /// The fixed-point variable `name`.
    pub fn var(name: impl Into<String>) -> F {
        Formula::Var(name.into()).arc()
    }

    /// The constant `true`.
    pub fn tt() -> F {
        Formula::True.arc()
    }

    /// The constant `false`.
    pub fn ff() -> F {
        Formula::False.arc()
    }

    /// `¬φ`, collapsing double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: F) -> F {
        match &*f {
            Formula::Not(inner) => inner.clone(),
            Formula::True => Formula::ff(),
            Formula::False => Formula::tt(),
            _ => Formula::Not(f).arc(),
        }
    }

    /// N-ary conjunction, flattening nested conjunctions.
    pub fn and(fs: impl IntoIterator<Item = F>) -> F {
        let mut out: Vec<F> = Vec::new();
        for f in fs {
            match &*f {
                Formula::And(inner) => out.extend(inner.iter().cloned()),
                Formula::True => {}
                _ => out.push(f),
            }
        }
        match out.len() {
            0 => Formula::tt(),
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out).arc(),
        }
    }

    /// N-ary disjunction, flattening nested disjunctions.
    pub fn or(fs: impl IntoIterator<Item = F>) -> F {
        let mut out: Vec<F> = Vec::new();
        for f in fs {
            match &*f {
                Formula::Or(inner) => out.extend(inner.iter().cloned()),
                Formula::False => {}
                _ => out.push(f),
            }
        }
        match out.len() {
            0 => Formula::ff(),
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out).arc(),
        }
    }

    /// `φ ⊃ ψ`.
    pub fn implies(f: F, g: F) -> F {
        Formula::Implies(f, g).arc()
    }

    /// `φ ≡ ψ`.
    pub fn iff(f: F, g: F) -> F {
        Formula::Iff(f, g).arc()
    }

    /// `K_i φ`.
    pub fn knows(i: AgentId, f: F) -> F {
        Formula::Knows(i, f).arc()
    }

    /// `E_G φ` (= `E_G^1 φ`).
    pub fn everyone(g: AgentGroup, f: F) -> F {
        Formula::EveryoneK(g, 1, f).arc()
    }

    /// `E_G^k φ`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the paper defines `E^k` for `k ≥ 1`; use the
    /// formula itself for `k = 0`).
    pub fn everyone_k(g: AgentGroup, k: u32, f: F) -> F {
        assert!(k >= 1, "E^k is defined for k >= 1");
        Formula::EveryoneK(g, k, f).arc()
    }

    /// `S_G φ`.
    pub fn someone(g: AgentGroup, f: F) -> F {
        Formula::Someone(g, f).arc()
    }

    /// `D_G φ`.
    pub fn distributed(g: AgentGroup, f: F) -> F {
        Formula::Distributed(g, f).arc()
    }

    /// `C_G φ`.
    pub fn common(g: AgentGroup, f: F) -> F {
        Formula::Common(g, f).arc()
    }

    /// `νX.φ`.
    pub fn gfp(var: impl Into<String>, body: F) -> F {
        Formula::Gfp(var.into(), body).arc()
    }

    /// `µX.φ`.
    pub fn lfp(var: impl Into<String>, body: F) -> F {
        Formula::Lfp(var.into(), body).arc()
    }

    /// `○φ`.
    pub fn next(f: F) -> F {
        Formula::Next(f).arc()
    }

    /// `◇φ` (now or later in the same run).
    pub fn eventually(f: F) -> F {
        Formula::Eventually(f).arc()
    }

    /// `□φ` (now and always later in the same run).
    pub fn always(f: F) -> F {
        Formula::Always(f).arc()
    }

    /// Past operator: `φ` held now or earlier in the same run.
    pub fn once(f: F) -> F {
        Formula::Once(f).arc()
    }

    /// `E^ε_G φ`.
    pub fn everyone_eps(g: AgentGroup, eps: u64, f: F) -> F {
        Formula::EveryoneEps(g, eps, f).arc()
    }

    /// `C^ε_G φ`.
    pub fn common_eps(g: AgentGroup, eps: u64, f: F) -> F {
        Formula::CommonEps(g, eps, f).arc()
    }

    /// `E^◇_G φ`.
    pub fn everyone_ev(g: AgentGroup, f: F) -> F {
        Formula::EveryoneEv(g, f).arc()
    }

    /// `C^◇_G φ`.
    pub fn common_ev(g: AgentGroup, f: F) -> F {
        Formula::CommonEv(g, f).arc()
    }

    /// `K_i^T φ`.
    pub fn knows_at(i: AgentId, t: u64, f: F) -> F {
        Formula::KnowsAt(i, t, f).arc()
    }

    /// `E^T_G φ`.
    pub fn everyone_ts(g: AgentGroup, t: u64, f: F) -> F {
        Formula::EveryoneTs(g, t, f).arc()
    }

    /// `C^T_G φ`.
    pub fn common_ts(g: AgentGroup, t: u64, f: F) -> F {
        Formula::CommonTs(g, t, f).arc()
    }

    /// The explicit greatest-fixed-point form of common knowledge,
    /// `νX.E_G(φ ∧ X)` — definitionally equal to [`Formula::common`]
    /// (Section 10); used to cross-validate the evaluator.
    pub fn common_as_gfp(g: AgentGroup, f: F) -> F {
        let x = fresh_var(&f);
        Formula::gfp(
            x.clone(),
            Formula::everyone(g, Formula::and([f, Formula::var(x)])),
        )
    }

    /// `true` if this node is a temporal operator, i.e. requires a frame
    /// with run/time structure to evaluate.
    pub fn is_temporal_op(&self) -> bool {
        matches!(
            self,
            Formula::Next(_)
                | Formula::Eventually(_)
                | Formula::Always(_)
                | Formula::Once(_)
                | Formula::EveryoneEps(..)
                | Formula::CommonEps(..)
                | Formula::EveryoneEv(..)
                | Formula::CommonEv(..)
                | Formula::KnowsAt(..)
                | Formula::EveryoneTs(..)
                | Formula::CommonTs(..)
        )
    }

    /// Number of nodes in the formula tree (each operator and leaf counts
    /// as one). Used to route very small formulas around the compiler:
    /// below [`evaluate`](crate::evaluate)'s threshold the tree walker
    /// beats compile-then-run on one-shot queries.
    pub fn node_count(&self) -> usize {
        let mut n = 1;
        self.for_each_child(|c| n += c.node_count());
        n
    }

    /// `true` if any subformula is a temporal operator.
    pub fn mentions_temporal(&self) -> bool {
        if self.is_temporal_op() {
            return true;
        }
        let mut found = false;
        self.for_each_child(|c| found |= c.mentions_temporal());
        found
    }

    /// Applies `f` to each immediate subformula.
    pub fn for_each_child(&self, mut f: impl FnMut(&Formula)) {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_) => {}
            Formula::Not(a)
            | Formula::Knows(_, a)
            | Formula::EveryoneK(_, _, a)
            | Formula::Someone(_, a)
            | Formula::Distributed(_, a)
            | Formula::Common(_, a)
            | Formula::Gfp(_, a)
            | Formula::Lfp(_, a)
            | Formula::Next(a)
            | Formula::Eventually(a)
            | Formula::Always(a)
            | Formula::Once(a)
            | Formula::EveryoneEps(_, _, a)
            | Formula::CommonEps(_, _, a)
            | Formula::EveryoneEv(_, a)
            | Formula::CommonEv(_, a)
            | Formula::KnowsAt(_, _, a)
            | Formula::EveryoneTs(_, _, a)
            | Formula::CommonTs(_, _, a) => f(a),
            Formula::And(xs) | Formula::Or(xs) => {
                for x in xs {
                    f(x);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                f(a);
                f(b);
            }
        }
    }

    /// Names of atoms mentioned anywhere in the formula, sorted and
    /// de-duplicated.
    pub fn atoms(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(f: &Formula, out: &mut Vec<String>) {
            if let Formula::Atom(name) = f {
                out.push(name.clone());
            }
            f.for_each_child(|c| walk(c, out));
        }
        walk(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Names of free (unbound) fixed-point variables.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(f: &Formula, bound: &mut Vec<String>, out: &mut Vec<String>) {
            match f {
                Formula::Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(x.clone());
                    }
                }
                Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
                    bound.push(x.clone());
                    walk(body, bound, out);
                    bound.pop();
                }
                _ => f.for_each_child(|c| walk(c, bound, out)),
            }
        }
        walk(self, &mut Vec::new(), &mut out);
        out.sort();
        out
    }

    /// Modal depth: the maximum nesting of knowledge/temporal operators.
    /// Fixed-point binders contribute the depth of one unfolding of their
    /// body; `E^k` counts as `k`.
    pub fn modal_depth(&self) -> u32 {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_) => 0,
            Formula::Knows(_, a) | Formula::KnowsAt(_, _, a) => 1 + a.modal_depth(),
            Formula::EveryoneK(_, k, a) => k + a.modal_depth(),
            Formula::Someone(_, a)
            | Formula::Distributed(_, a)
            | Formula::Common(_, a)
            | Formula::EveryoneEps(_, _, a)
            | Formula::CommonEps(_, _, a)
            | Formula::EveryoneEv(_, a)
            | Formula::CommonEv(_, a)
            | Formula::EveryoneTs(_, _, a)
            | Formula::CommonTs(_, _, a) => 1 + a.modal_depth(),
            Formula::Not(a)
            | Formula::Gfp(_, a)
            | Formula::Lfp(_, a)
            | Formula::Next(a)
            | Formula::Eventually(a)
            | Formula::Always(a)
            | Formula::Once(a) => a.modal_depth(),
            Formula::And(xs) | Formula::Or(xs) => {
                xs.iter().map(|x| x.modal_depth()).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.modal_depth().max(b.modal_depth()),
        }
    }
}

/// Produces a variable name not occurring (free or bound) in `f`.
pub(crate) fn fresh_var(f: &Formula) -> String {
    fn collect(f: &Formula, out: &mut Vec<String>) {
        match f {
            Formula::Var(x) => out.push(x.clone()),
            Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
                out.push(x.clone());
                collect(body, out);
            }
            _ => f.for_each_child(|c| collect(c, out)),
        }
    }
    let mut used = Vec::new();
    collect(f, &mut used);
    let mut name = "X".to_string();
    let mut i = 0;
    while used.contains(&name) {
        i += 1;
        name = format!("X{i}");
    }
    name
}

// ---------------------------------------------------------------------------
// Pretty printing (round-trips through the parser).
// ---------------------------------------------------------------------------

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Formula {
    /// Precedence levels: 0 iff, 1 implies, 2 or, 3 and, 4 unary.
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        let my_prec = match self {
            Formula::Iff(..) => 0,
            Formula::Implies(..) => 1,
            Formula::Or(_) => 2,
            Formula::And(_) => 3,
            _ => 4,
        };
        let paren = my_prec < prec;
        if paren {
            write!(f, "(")?;
        }
        match self {
            Formula::True => write!(f, "true")?,
            Formula::False => write!(f, "false")?,
            Formula::Atom(a) => write!(f, "{a}")?,
            Formula::Var(x) => write!(f, "${x}")?,
            Formula::Not(a) => {
                write!(f, "!")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    x.fmt_prec(f, 4)?;
                }
            }
            Formula::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    x.fmt_prec(f, 3)?;
                }
            }
            Formula::Implies(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, " -> ")?;
                b.fmt_prec(f, 2)?;
            }
            Formula::Iff(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " <-> ")?;
                b.fmt_prec(f, 1)?;
            }
            Formula::Knows(i, a) => {
                write!(f, "K{} ", i.index())?;
                a.fmt_prec(f, 4)?;
            }
            Formula::EveryoneK(g, k, a) => {
                if *k == 1 {
                    write!(f, "E{g} ")?;
                } else {
                    write!(f, "E^{k}{g} ")?;
                }
                a.fmt_prec(f, 4)?;
            }
            Formula::Someone(g, a) => {
                write!(f, "S{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Distributed(g, a) => {
                write!(f, "D{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Common(g, a) => {
                write!(f, "C{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Gfp(x, a) => {
                write!(f, "nu {x}. ")?;
                a.fmt_prec(f, 0)?;
            }
            Formula::Lfp(x, a) => {
                write!(f, "mu {x}. ")?;
                a.fmt_prec(f, 0)?;
            }
            Formula::Next(a) => {
                write!(f, "next ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Eventually(a) => {
                write!(f, "even ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Always(a) => {
                write!(f, "alw ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::Once(a) => {
                write!(f, "once ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::EveryoneEps(g, e, a) => {
                write!(f, "Eeps[{e}]{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::CommonEps(g, e, a) => {
                write!(f, "Ceps[{e}]{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::EveryoneEv(g, a) => {
                write!(f, "Eev{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::CommonEv(g, a) => {
                write!(f, "Cev{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::KnowsAt(i, t, a) => {
                write!(f, "K{}@[{t}] ", i.index())?;
                a.fmt_prec(f, 4)?;
            }
            Formula::EveryoneTs(g, t, a) => {
                write!(f, "ET[{t}]{g} ")?;
                a.fmt_prec(f, 4)?;
            }
            Formula::CommonTs(g, t, a) => {
                write!(f, "CT[{t}]{g} ")?;
                a.fmt_prec(f, 4)?;
            }
        }
        if paren {
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g2() -> AgentGroup {
        AgentGroup::all(2)
    }

    #[test]
    fn constructors_normalise() {
        let p = Formula::atom("p");
        let q = Formula::atom("q");
        // Double negation collapses.
        assert_eq!(Formula::not(Formula::not(p.clone())), p);
        // Nested conjunction flattens; `true` units drop.
        let f = Formula::and([
            Formula::and([p.clone(), q]),
            Formula::tt(),
            Formula::atom("r"),
        ]);
        match &*f {
            Formula::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        // Singleton and empty cases.
        assert_eq!(Formula::and([p.clone()]), p);
        assert_eq!(Formula::and(std::iter::empty::<F>()), Formula::tt());
        assert_eq!(Formula::or(std::iter::empty::<F>()), Formula::ff());
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn e0_panics() {
        Formula::everyone_k(g2(), 0, Formula::atom("p"));
    }

    #[test]
    fn display_round_readable() {
        let f = Formula::implies(
            Formula::knows(AgentId::new(0), Formula::atom("p")),
            Formula::common(g2(), Formula::or([Formula::atom("p"), Formula::atom("q")])),
        );
        assert_eq!(f.to_string(), "K0 p -> C{p0,p1} (p | q)");
        let g = Formula::gfp(
            "X",
            Formula::everyone(g2(), Formula::and([Formula::atom("p"), Formula::var("X")])),
        );
        assert_eq!(g.to_string(), "nu X. E{p0,p1} (p & $X)");
    }

    #[test]
    fn atoms_and_free_vars() {
        let f = Formula::and([
            Formula::atom("b"),
            Formula::gfp("X", Formula::and([Formula::var("X"), Formula::var("Y")])),
            Formula::atom("a"),
            Formula::atom("b"),
        ]);
        assert_eq!(f.atoms(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(f.free_vars(), vec!["Y".to_string()]);
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let f = Formula::and([Formula::var("X"), Formula::var("X1")]);
        assert_eq!(fresh_var(&f), "X2");
        assert_eq!(fresh_var(&Formula::atom("p")), "X");
    }

    #[test]
    fn common_as_gfp_shape() {
        let f = Formula::common_as_gfp(g2(), Formula::atom("p"));
        assert_eq!(f.to_string(), "nu X. E{p0,p1} (p & $X)");
    }

    #[test]
    fn temporal_detection() {
        let plain = Formula::common(g2(), Formula::atom("p"));
        assert!(!plain.mentions_temporal());
        let temp = Formula::not(Formula::everyone_eps(g2(), 3, Formula::atom("p")));
        assert!(temp.mentions_temporal());
        assert!(!temp.is_temporal_op(), "negation itself is not temporal");
    }

    #[test]
    fn modal_depth_counts() {
        let p = Formula::atom("p");
        assert_eq!(p.modal_depth(), 0);
        let f = Formula::knows(
            AgentId::new(0),
            Formula::everyone_k(g2(), 3, Formula::atom("p")),
        );
        assert_eq!(f.modal_depth(), 4);
    }
}
