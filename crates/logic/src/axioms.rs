//! Axiom and inference-rule checkers.
//!
//! Proposition 1 of Halpern–Moses states that under view-based knowledge
//! interpretations the operators `K_i`, `D_G` and `C_G` have the properties
//! of S5; Section 6 adds the fixed-point axiom C1 and induction rule C2 for
//! common knowledge, and Section 11 observes that `C^ε`/`C^◇` retain only
//! positive introspection (A3) and necessitation (R1). This module makes
//! those claims checkable: each axiom becomes a set-level inclusion tested
//! over a suite of denotations.
//!
//! The checks are *sound for refutation* (a failure is a genuine
//! counterexample at a world) and, because the operators are determined by
//! finitely many blocks, checking over all atom denotations plus
//! pseudo-random sets is a strong validity test; the crate's property tests
//! run them over random models.

use crate::frame::Frame;
use crate::temporal;
use hm_kripke::{AgentGroup, AgentId, SplitMix64, WorldId, WorldSet};

/// A modal operator whose S5 status we can test, applied at the level of
/// world sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModalOp {
    /// `K_i`.
    Knows(AgentId),
    /// `E_G`.
    Everyone(AgentGroup),
    /// `D_G`.
    Distributed(AgentGroup),
    /// `C_G`.
    Common(AgentGroup),
    /// `E^ε_G` (temporal frames only).
    EveryoneEps(AgentGroup, u64),
    /// `C^ε_G` (temporal frames only).
    CommonEps(AgentGroup, u64),
    /// `E^◇_G` (temporal frames only).
    EveryoneEv(AgentGroup),
    /// `C^◇_G` (temporal frames only).
    CommonEv(AgentGroup),
    /// `E^T_G` (temporal frames only).
    EveryoneTs(AgentGroup, u64),
    /// `C^T_G` (temporal frames only).
    CommonTs(AgentGroup, u64),
}

impl ModalOp {
    /// Applies the operator to a denotation.
    ///
    /// # Panics
    ///
    /// Panics if a temporal operator is applied on a frame without
    /// temporal structure.
    pub fn apply(&self, frame: &dyn Frame, a: &WorldSet) -> WorldSet {
        let member_knowledge = |g: &AgentGroup, arg: &WorldSet| -> Vec<WorldSet> {
            g.iter().map(|i| frame.knowledge_set(i, arg)).collect()
        };
        let need_ts = || {
            frame
                .temporal()
                .expect("temporal operator needs temporal frame")
        };
        match self {
            ModalOp::Knows(i) => frame.knowledge_set(*i, a),
            ModalOp::Everyone(g) => frame.everyone_set(g, a),
            ModalOp::Distributed(g) => frame.distributed_set(g, a),
            ModalOp::Common(g) => frame.common_set(g, a),
            ModalOp::EveryoneEps(g, eps) => {
                temporal::everyone_eps_set(need_ts(), g, *eps, &member_knowledge(g, a))
            }
            ModalOp::EveryoneEv(g) => {
                temporal::everyone_ev_set(need_ts(), g, &member_knowledge(g, a))
            }
            ModalOp::EveryoneTs(g, t) => {
                temporal::everyone_ts_set(need_ts(), g, *t, &member_knowledge(g, a))
            }
            ModalOp::CommonEps(g, eps) => gfp(frame.num_worlds(), |x| {
                let arg = a.intersection(x);
                temporal::everyone_eps_set(need_ts(), g, *eps, &member_knowledge(g, &arg))
            }),
            ModalOp::CommonEv(g) => gfp(frame.num_worlds(), |x| {
                let arg = a.intersection(x);
                temporal::everyone_ev_set(need_ts(), g, &member_knowledge(g, &arg))
            }),
            ModalOp::CommonTs(g, t) => gfp(frame.num_worlds(), |x| {
                let arg = a.intersection(x);
                temporal::everyone_ts_set(need_ts(), g, *t, &member_knowledge(g, &arg))
            }),
        }
    }

    /// The matching "everyone" operator for common-knowledge variants,
    /// used by the fixed-point axiom check; `None` for base operators.
    pub fn everyone_form(&self) -> Option<ModalOp> {
        match self {
            ModalOp::Common(g) => Some(ModalOp::Everyone(g.clone())),
            ModalOp::CommonEps(g, e) => Some(ModalOp::EveryoneEps(g.clone(), *e)),
            ModalOp::CommonEv(g) => Some(ModalOp::EveryoneEv(g.clone())),
            ModalOp::CommonTs(g, t) => Some(ModalOp::EveryoneTs(g.clone(), *t)),
            _ => None,
        }
    }
}

fn gfp(n: usize, mut f: impl FnMut(&WorldSet) -> WorldSet) -> WorldSet {
    let mut x = WorldSet::full(n);
    loop {
        let next = f(&x);
        if next == x {
            return x;
        }
        x = next;
    }
}

/// Outcome of checking the S5 axioms for one operator over a set suite.
///
/// Each field is `None` if the axiom held on every sample, or
/// `Some(world)` giving a world where it failed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct S5Report {
    /// A1, `Mφ ⊃ φ`.
    pub truth_failure: Option<WorldId>,
    /// A2, `Mφ ∧ M(φ ⊃ ψ) ⊃ Mψ`.
    pub consequence_failure: Option<WorldId>,
    /// A3, `Mφ ⊃ MMφ`.
    pub pos_introspection_failure: Option<WorldId>,
    /// A4, `¬Mφ ⊃ M¬Mφ`.
    pub neg_introspection_failure: Option<WorldId>,
    /// R1, from `φ` valid infer `Mφ` valid.
    pub necessitation_failure: Option<WorldId>,
}

impl S5Report {
    /// `true` iff all five S5 properties held.
    pub fn is_s5(&self) -> bool {
        self.truth_failure.is_none()
            && self.consequence_failure.is_none()
            && self.pos_introspection_failure.is_none()
            && self.neg_introspection_failure.is_none()
            && self.necessitation_failure.is_none()
    }

    /// The profile Section 11 proves for `C^ε` and `C^◇`: A3 and R1 only
    /// are guaranteed (A1/A2/A4 may fail).
    pub fn satisfies_a3_r1(&self) -> bool {
        self.pos_introspection_failure.is_none() && self.necessitation_failure.is_none()
    }
}

/// Generates a deterministic suite of test denotations: every atom of the
/// frame plus `extra` pseudo-random subsets, plus ∅ and the full set.
pub fn sample_sets(frame: &dyn Frame, atoms: &[&str], extra: usize, seed: u64) -> Vec<WorldSet> {
    let n = frame.num_worlds();
    let mut out = vec![WorldSet::empty(n), WorldSet::full(n)];
    for a in atoms {
        if let Some(s) = frame.atom_set(a) {
            out.push(s);
        }
    }
    let mut rng = SplitMix64::new(seed);
    for _ in 0..extra {
        let mut s = WorldSet::empty(n);
        for w in 0..n {
            if rng.next_bool(1, 2) {
                s.insert(WorldId::new(w));
            }
        }
        out.push(s);
    }
    out
}

/// Checks the S5 axioms for `op` over all (pairs of) sets in `suite`.
pub fn check_s5(frame: &dyn Frame, op: &ModalOp, suite: &[WorldSet]) -> S5Report {
    let mut report = S5Report::default();
    let full = WorldSet::full(frame.num_worlds());
    for a in suite {
        let ma = op.apply(frame, a);
        // A1: M(A) ⊆ A.
        if report.truth_failure.is_none() {
            report.truth_failure = ma.difference(a).first();
        }
        // A3: M(A) ⊆ M(M(A)).
        if report.pos_introspection_failure.is_none() {
            let mma = op.apply(frame, &ma);
            report.pos_introspection_failure = ma.difference(&mma).first();
        }
        // A4: ¬M(A) ⊆ M(¬M(A)).
        if report.neg_introspection_failure.is_none() {
            let not_ma = ma.complement();
            let m_not_ma = op.apply(frame, &not_ma);
            report.neg_introspection_failure = not_ma.difference(&m_not_ma).first();
        }
        // R1: A valid ⇒ M(A) valid.
        if report.necessitation_failure.is_none() && a == &full {
            report.necessitation_failure = ma.complement().first();
        }
        // A2: M(A) ∩ M(A ⊃ B) ⊆ M(B).
        if report.consequence_failure.is_none() {
            for b in suite {
                let a_implies_b = a.complement().union(b);
                let lhs = ma.intersection(&op.apply(frame, &a_implies_b));
                let mb = op.apply(frame, b);
                report.consequence_failure = lhs.difference(&mb).first();
                if report.consequence_failure.is_some() {
                    break;
                }
            }
        }
    }
    report
}

/// Checks the fixed-point axiom C1 for a common-knowledge variant:
/// `Cφ ≡ E(φ ∧ Cφ)`. Returns a counterexample world if it fails.
///
/// # Panics
///
/// Panics if `op` is not a common-knowledge variant.
pub fn check_fixed_point_axiom(
    frame: &dyn Frame,
    op: &ModalOp,
    suite: &[WorldSet],
) -> Option<WorldId> {
    let e_op = op
        .everyone_form()
        .expect("fixed-point axiom needs a C-variant");
    for a in suite {
        let c = op.apply(frame, a);
        let e = e_op.apply(frame, &a.intersection(&c));
        if c != e {
            return c
                .difference(&e)
                .first()
                .or_else(|| e.difference(&c).first());
        }
    }
    None
}

/// Checks the induction rule C2 for a common-knowledge variant: for every
/// pair `(A, B)` in the suite with `A ⊆ E(A ∩ B)` valid, `A ⊆ C(B)` must be
/// valid. Returns a counterexample world if the rule fails.
///
/// # Panics
///
/// Panics if `op` is not a common-knowledge variant.
pub fn check_induction_rule(
    frame: &dyn Frame,
    op: &ModalOp,
    suite: &[WorldSet],
) -> Option<WorldId> {
    let e_op = op
        .everyone_form()
        .expect("induction rule needs a C-variant");
    for a in suite {
        for b in suite {
            let hyp = e_op.apply(frame, &a.intersection(b));
            if a.is_subset(&hyp) {
                let concl = op.apply(frame, b);
                if let Some(w) = a.difference(&concl).first() {
                    return Some(w);
                }
            }
        }
    }
    None
}

/// Checks Lemma 2: the following are equivalent at every world, for
/// non-empty `G`: (1) `C_G φ`; (2) `K_i(φ ∧ C_G φ)` for **all** `i ∈ G`;
/// (3) `K_i(φ ∧ C_G φ)` for **some** `i ∈ G`. Returns a world where the
/// tri-equivalence fails, if any.
pub fn check_lemma2(frame: &dyn Frame, g: &AgentGroup, suite: &[WorldSet]) -> Option<WorldId> {
    for a in suite {
        let c = frame.common_set(g, a);
        let arg = a.intersection(&c);
        let mut all = WorldSet::full(frame.num_worlds());
        let mut some = WorldSet::empty(frame.num_worlds());
        for i in g.iter() {
            let k = frame.knowledge_set(i, &arg);
            all.intersect_with(&k);
            some.union_with(&k);
        }
        if c != all || c != some {
            for x in [
                c.difference(&all),
                all.difference(&c),
                c.difference(&some),
                some.difference(&c),
            ] {
                if let Some(w) = x.first() {
                    return Some(w);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_kripke::{random_model, RandomModelSpec};

    #[test]
    fn k_d_c_are_s5_on_random_models() {
        for seed in 0..12 {
            let m = random_model(seed, RandomModelSpec::default());
            let suite = sample_sets(&m, &["q0", "q1"], 6, seed ^ 0xABCD);
            let g = AgentGroup::all(m.num_agents());
            for op in [
                ModalOp::Knows(AgentId::new(0)),
                ModalOp::Distributed(g.clone()),
                ModalOp::Common(g.clone()),
            ] {
                let rep = check_s5(&m, &op, &suite);
                assert!(rep.is_s5(), "seed {seed} op {op:?}: {rep:?}");
            }
        }
    }

    #[test]
    fn e_is_not_s5_in_general() {
        // E_G fails positive introspection on a model where agents'
        // partitions differ: find a seed exhibiting the failure.
        let mut found_failure = false;
        for seed in 0..50 {
            let m = random_model(seed, RandomModelSpec::default());
            let suite = sample_sets(&m, &["q0"], 4, seed);
            let g = AgentGroup::all(m.num_agents());
            let rep = check_s5(&m, &ModalOp::Everyone(g), &suite);
            // A1 and R1 always hold for E; A3/A4 may fail.
            assert!(rep.truth_failure.is_none(), "E satisfies the truth axiom");
            assert!(rep.necessitation_failure.is_none());
            if rep.pos_introspection_failure.is_some() || rep.neg_introspection_failure.is_some() {
                found_failure = true;
            }
        }
        assert!(found_failure, "expected some E_G introspection failure");
    }

    #[test]
    fn fixed_point_and_induction_for_c() {
        for seed in 0..12 {
            let m = random_model(seed, RandomModelSpec::default());
            let suite = sample_sets(&m, &["q0", "q1"], 5, seed.wrapping_mul(7));
            let g = AgentGroup::all(m.num_agents());
            let c = ModalOp::Common(g.clone());
            assert_eq!(check_fixed_point_axiom(&m, &c, &suite), None, "seed {seed}");
            assert_eq!(check_induction_rule(&m, &c, &suite), None, "seed {seed}");
            assert_eq!(check_lemma2(&m, &g, &suite), None, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "needs a C-variant")]
    fn fixed_point_axiom_rejects_base_ops() {
        let m = random_model(0, RandomModelSpec::default());
        let suite = sample_sets(&m, &[], 1, 0);
        check_fixed_point_axiom(&m, &ModalOp::Knows(AgentId::new(0)), &suite);
    }

    #[test]
    fn sample_sets_contains_bounds() {
        let m = random_model(3, RandomModelSpec::default());
        let suite = sample_sets(&m, &["q0"], 3, 9);
        assert!(suite[0].is_empty());
        assert!(suite[1].is_full());
        assert_eq!(suite.len(), 2 + 1 + 3);
    }
}
