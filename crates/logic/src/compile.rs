//! Ahead-of-time formula compilation.
//!
//! The tree-walking evaluator ([`evaluate_tree`](crate::evaluate_tree))
//! resolves every atom by `&str` at every formula node and re-checks
//! well-formedness on each visit. When the same epistemic question is
//! asked against many frames — the shape of every experiment in the
//! paper, stressed further by *Common knowledge revisited* — that
//! per-node work dominates. [`compile`] lowers a [`Formula`] once into a
//! [`CompiledFormula`]: a flat post-order instruction buffer over a stack
//! machine, with
//!
//! - **interned atoms**: each distinct atom name occupies one slot of an
//!   atom table, resolved against a frame once per [`bind`] instead of
//!   once per node per evaluation (frames exposing an
//!   [`AtomTable`](crate::AtomTable) resolve by dense id);
//! - **interned agent groups**: each distinct [`AgentGroup`] is stored
//!   once and referenced by index;
//! - **preallocated fixed-point slots**: `ν`/`µ` binders are
//!   alpha-resolved at compile time to dense slot indices, so evaluation
//!   needs no environment map, and shadowing costs nothing;
//! - **hoisted fixed-point bodies**: each binder body is a contiguous
//!   chunk of the same buffer, re-executed by the `Fix` instruction until
//!   convergence.
//!
//! Well-formedness (unbound variables, non-monotone binders) is checked
//! at compile time; frame compatibility (unknown atoms, agent ranges,
//! temporal structure) at bind time, in the same pre-order the
//! tree-walker would discover it. After a successful bind, execution is
//! infallible.
//!
//! [`bind`]: CompiledFormula::bind

use crate::analysis::{visit_frame_reqs, FrameReq};
use crate::eval::{check_positive, EvalError};
use crate::formula::Formula;
use crate::frame::{Frame, TemporalStructure};
use crate::temporal;
use hm_kripke::{AgentGroup, AgentId, WorldSet};
use hm_limits::{failpoints, Budget, LimitExceeded, Phase};
use std::collections::HashMap;

/// One instruction of the compiled stack machine. Instructions are laid
/// out in post-order: each pops its operands (pushed by earlier
/// instructions) and pushes one result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Push the full set.
    True,
    /// Push the empty set.
    False,
    /// Push the resolved set of atom-table entry `i`.
    Atom(u32),
    /// Push the current value of fixed-point slot `i`.
    Slot(u32),
    /// Pop one, push its complement.
    Not,
    /// Pop `n`, push their intersection.
    And(u32),
    /// Pop `n`, push their union.
    Or(u32),
    /// Pop consequent then antecedent, push `¬a ∪ b`.
    Implies,
    /// Pop two, push the biconditional.
    Iff,
    /// Pop one, push `K_i`.
    Knows(u32),
    /// Pop one, push the `k`-fold `E_G` iterate.
    EveryoneK { group: u32, k: u32 },
    /// Pop one, push `S_G`.
    Someone(u32),
    /// Pop one, push `D_G`.
    Distributed(u32),
    /// Pop one, push `C_G`.
    Common(u32),
    /// Iterate chunk `body` from the full (`gfp`) or empty (`lfp`) set in
    /// slot `slot` until convergence; push the fixed point.
    Fix { gfp: bool, slot: u32, body: u32 },
    /// Common-subexpression elimination: evaluate chunk `body` into
    /// register `reg` on first execution, push a reference to the
    /// register thereafter. Emitted for closed (fixed-point-variable
    /// free) subformulas occurring more than once — each is evaluated
    /// once per `eval`, where the tree-walker re-evaluates every
    /// occurrence.
    Memo { reg: u32, body: u32 },
    /// Pop one, push the temporal image (run/time operators).
    Next,
    /// See [`Op::Next`].
    Eventually,
    /// See [`Op::Next`].
    Always,
    /// See [`Op::Next`].
    Once,
    /// Pop one, push `E^ε_G`.
    EveryoneEps { group: u32, eps: u64 },
    /// Pop one, push the `C^ε_G` fixed point (internal iteration).
    CommonEps { group: u32, eps: u64 },
    /// Pop one, push `E^◇_G`.
    EveryoneEv(u32),
    /// Pop one, push the `C^◇_G` fixed point.
    CommonEv(u32),
    /// Pop one, push `K_i^T`.
    KnowsAt { agent: u32, stamp: u64 },
    /// Pop one, push `E^T_G`.
    EveryoneTs { group: u32, stamp: u64 },
    /// Pop one, push the `C^T_G` fixed point.
    CommonTs { group: u32, stamp: u64 },
}

/// A frame-compatibility check recorded at compile time, replayed by
/// [`CompiledFormula::bind`] in the tree-walker's discovery (pre-)order so
/// both evaluators report the same first error.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Check {
    /// Agent index must be `< frame.num_agents()`.
    Agent(u32),
    /// Atom-table entry must be interpreted by the frame.
    Atom(u32),
    /// Frame must expose a temporal structure (op name for the error).
    Temporal(&'static str),
}

/// A formula lowered to the flat instruction buffer. Produce one with
/// [`compile`]; evaluate with [`eval`](CompiledFormula::eval), or
/// [`bind`](CompiledFormula::bind) once and run
/// [`eval_bound`](CompiledFormula::eval_bound) many times.
///
/// # Examples
///
/// ```
/// use hm_logic::{compile, parse, evaluate_tree};
/// use hm_kripke::{ModelBuilder, AgentId};
/// let mut b = ModelBuilder::new(1);
/// let w0 = b.add_world("w0");
/// b.add_world("w1");
/// let p = b.atom("p");
/// b.set_atom(p, w0, true);
/// b.set_partition_by_key(AgentId::new(0), |w| w.index());
/// let m = b.build();
/// let f = parse("K0 p | !p")?;
/// let compiled = compile(&f)?;
/// assert_eq!(compiled.eval(&m)?, evaluate_tree(&m, &f)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledFormula {
    /// The flat instruction buffer; chunk `i` occupies
    /// `chunk_ranges[i].0 .. chunk_ranges[i].1`. The main program is the
    /// last chunk; earlier chunks are hoisted fixed-point bodies.
    ops: Vec<Op>,
    chunk_ranges: Vec<(u32, u32)>,
    /// Interned atom names; `Op::Atom(i)` reads the `i`-th resolved set.
    atoms: Vec<String>,
    /// Interned agent groups.
    groups: Vec<AgentGroup>,
    /// Frame checks in tree-walker discovery order.
    checks: Vec<Check>,
    /// Number of fixed-point slots (alpha-resolved binders).
    num_slots: u32,
    /// Number of CSE registers (distinct repeated closed subformulas).
    num_regs: u32,
    /// `true` if any instruction needs run/time structure.
    mentions_temporal: bool,
    /// `true` if any instruction is `D_G` (not bisimulation-invariant).
    mentions_distributed: bool,
}

/// Compiles a closed formula. Fails with [`EvalError::UnboundVar`] or
/// [`EvalError::NonMonotone`]; frame-dependent errors surface at
/// [`bind`](CompiledFormula::bind) time.
///
/// # Errors
///
/// See above.
pub fn compile(f: &Formula) -> Result<CompiledFormula, EvalError> {
    let mut counts = HashMap::new();
    // The CSE pre-pass hashes subtrees; on small formulas (the common
    // one-shot `evaluate` case) there is nothing worth sharing and the
    // pre-pass would dominate compilation, so skip it outright.
    if node_count_at_least(f, CSE_MIN_NODES) {
        count_repeats(f, &mut counts);
    }
    let mut c = Compiler {
        out: CompiledFormula {
            ops: Vec::new(),
            chunk_ranges: Vec::new(),
            atoms: Vec::new(),
            groups: Vec::new(),
            checks: Vec::new(),
            num_slots: 0,
            num_regs: 0,
            mentions_temporal: false,
            mentions_distributed: false,
        },
        scope: Vec::new(),
        counts,
        cse: HashMap::new(),
    };
    let mut main = Vec::new();
    c.emit(f, &mut main)?;
    c.push_chunk(main);
    // Bind-time checks come from the same frame-requirement traversal the
    // static analyzer uses (one definition of discovery order). Every
    // atom was interned during emission, so the lookups cannot miss; a
    // CSE'd subtree contributes its checks once per occurrence, which
    // repeats — harmlessly — some checks the emitter used to skip.
    let out = &mut c.out;
    visit_frame_reqs(f, &mut |req| match req {
        FrameReq::Agent(i) => out.checks.push(Check::Agent(i.index() as u32)),
        FrameReq::Atom(name) => {
            let ix = out
                .atoms
                .iter()
                .position(|a| a == name)
                .expect("emission interned every atom");
            out.checks.push(Check::Atom(ix as u32));
        }
        FrameReq::Temporal(op) => out.checks.push(Check::Temporal(op)),
    });
    Ok(c.out)
}

/// Below this many nodes, common-subexpression elimination is not
/// attempted (see [`compile`]).
const CSE_MIN_NODES: usize = 16;

/// `true` iff the formula has at least `min` nodes (early-exit count).
fn node_count_at_least(f: &Formula, min: usize) -> bool {
    fn walk(f: &Formula, left: &mut usize) {
        if *left == 0 {
            return;
        }
        *left -= 1;
        f.for_each_child(|c| walk(c, left));
    }
    let mut left = min;
    walk(f, &mut left);
    left == 0
}

/// Counts occurrences of closed non-leaf subformulas — the CSE
/// candidates. Children of a subformula already seen are not re-counted:
/// later occurrences will reuse the whole memoized parent, so inner
/// repetitions within it are already shared.
fn count_repeats(f: &Formula, counts: &mut HashMap<Formula, u32>) {
    if cse_candidate(f) {
        let c = counts.entry(f.clone()).or_insert(0);
        *c += 1;
        if *c > 1 {
            return;
        }
    }
    f.for_each_child(|c| count_repeats(c, counts));
}

/// Non-leaf (leaves are already O(1) to evaluate) and closed: fixed-point
/// variables change value across iterations, so any subformula with a
/// free variable must be re-evaluated in place.
fn cse_candidate(f: &Formula) -> bool {
    !matches!(
        f,
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Var(_)
    ) && {
        let mut bound: Vec<String> = Vec::new();
        !has_free_var(f, &mut bound)
    }
}

/// Cheap free-variable test: unlike `Formula::free_vars` (which collects
/// a sorted `Vec<String>` per call), this allocates only at binder
/// nodes. It runs once per node of the compile pre-pass.
fn has_free_var(f: &Formula, bound: &mut Vec<String>) -> bool {
    match f {
        Formula::Var(x) => !bound.iter().any(|b| b == x),
        Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
            bound.push(x.clone());
            let open = has_free_var(body, bound);
            bound.pop();
            open
        }
        _ => {
            let mut open = false;
            f.for_each_child(|c| open |= has_free_var(c, bound));
            open
        }
    }
}

/// The atom table of a formula resolved against one frame, plus the
/// frame-compatibility proof: holding a `Bound` means every atom, agent
/// index and temporal operator of the compiled formula is interpreted by
/// the frame it was bound against, so evaluation cannot fail.
///
/// Universe-compatibility is the caller's obligation: evaluating with a
/// `Bound` produced from a *different* frame panics on the first
/// mismatched set operation.
#[derive(Debug, Clone)]
pub struct Bound {
    atom_sets: Vec<WorldSet>,
}

impl CompiledFormula {
    /// Resolves the atom table against `frame` and validates agent
    /// indices and temporal requirements — once per frame, instead of
    /// once per node per evaluation.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownAtom`], [`EvalError::AgentOutOfRange`] or
    /// [`EvalError::NoTemporalStructure`], reported in the same order the
    /// tree-walking evaluator would encounter them.
    pub fn bind(&self, frame: &dyn Frame) -> Result<Bound, EvalError> {
        let mut atom_sets: Vec<Option<WorldSet>> = vec![None; self.atoms.len()];
        let table = frame.atom_table();
        for check in &self.checks {
            match *check {
                Check::Agent(i) => {
                    if i as usize >= frame.num_agents() {
                        return Err(EvalError::AgentOutOfRange(i as usize));
                    }
                }
                Check::Temporal(op) => {
                    if frame.temporal().is_none() {
                        return Err(EvalError::NoTemporalStructure(op.to_string()));
                    }
                }
                Check::Atom(ix) => {
                    let slot = &mut atom_sets[ix as usize];
                    if slot.is_none() {
                        let name = &self.atoms[ix as usize];
                        let set = match table {
                            Some(t) => t.atom_index(name).map(|id| t.atom_set_by_id(id)),
                            None => frame.atom_set(name),
                        };
                        *slot = Some(set.ok_or_else(|| EvalError::UnknownAtom(name.clone()))?);
                    }
                }
            }
        }
        Ok(Bound {
            atom_sets: atom_sets
                .into_iter()
                .map(|s| s.expect("every atom has a Check::Atom"))
                .collect(),
        })
    }

    /// Compile-once, evaluate-now convenience: [`bind`](Self::bind) +
    /// [`eval_bound`](Self::eval_bound).
    ///
    /// # Errors
    ///
    /// Propagates bind errors (see [`bind`](Self::bind)).
    pub fn eval(&self, frame: &dyn Frame) -> Result<WorldSet, EvalError> {
        Ok(self.eval_bound(frame, &self.bind(frame)?))
    }

    /// Runs the instruction buffer against `frame` using atom sets
    /// resolved by a previous [`bind`](Self::bind) against the same
    /// frame. Infallible: every failure mode was ruled out at compile or
    /// bind time.
    ///
    /// # Panics
    ///
    /// Panics (universe mismatch) if `bound` came from a frame with a
    /// different world universe.
    pub fn eval_bound(&self, frame: &dyn Frame, bound: &Bound) -> WorldSet {
        self.run(frame, bound, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// [`eval_bound`](Self::eval_bound) under a resource [`Budget`]: each
    /// executed instruction charges one visited state (amortized — see
    /// `hm-limits`), and every fixed-point iteration re-checks deadlines
    /// and cancellation, so divergently large evaluations are interrupted
    /// at iteration granularity.
    ///
    /// # Errors
    ///
    /// [`EvalError::Limit`] when the budget is exhausted, the deadline
    /// passes, or the computation is cancelled. The failpoint site
    /// `logic::eval` can inject the same errors deterministically.
    ///
    /// # Panics
    ///
    /// Panics (universe mismatch) if `bound` came from a frame with a
    /// different world universe.
    pub fn eval_bound_budgeted(
        &self,
        frame: &dyn Frame,
        bound: &Bound,
        budget: &Budget,
    ) -> Result<WorldSet, EvalError> {
        failpoints::check("logic::eval", Phase::Eval)?;
        self.run(frame, bound, budget)
    }

    fn run(
        &self,
        frame: &dyn Frame,
        bound: &Bound,
        budget: &Budget,
    ) -> Result<WorldSet, EvalError> {
        let n = frame.num_worlds();
        let mut m = Machine {
            compiled: self,
            frame,
            ts: frame.temporal(),
            atoms: &bound.atom_sets,
            slots: vec![WorldSet::empty(n); self.num_slots as usize],
            regs: vec![None; self.num_regs as usize],
            stack: Vec::new(),
            n,
            budget,
        };
        m.exec_chunk(self.chunk_ranges.len() - 1)
            .map_err(EvalError::Limit)?;
        let top = m.stack.pop().expect("program pushes exactly one result");
        Ok(m.owned_value(top))
    }

    /// `true` if any instruction requires run/time structure.
    pub fn mentions_temporal(&self) -> bool {
        self.mentions_temporal
    }

    /// `true` if any instruction is distributed knowledge `D_G` — the one
    /// static operator that is not bisimulation-invariant, so quotient
    /// frames must not be substituted for the original.
    pub fn mentions_distributed(&self) -> bool {
        self.mentions_distributed
    }

    /// `true` if the formula may be answered on a bisimulation quotient
    /// with identical verdicts: no temporal operators (the quotient has
    /// no run/time structure) and no `D_G` (not invariant).
    pub fn quotient_safe(&self) -> bool {
        !self.mentions_temporal && !self.mentions_distributed
    }

    /// Number of instructions across all chunks (diagnostics).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The interned atom names, in first-occurrence order.
    pub fn atom_names(&self) -> impl Iterator<Item = &str> {
        self.atoms.iter().map(String::as_str)
    }
}

/// A compile-and-bind cache for workloads that evaluate the same
/// formulas against the same frame many times (onset scans, ladder
/// sweeps). The first [`eval`](EvalCache::eval) of a formula compiles
/// and binds it; later calls re-run the bound program. Only the
/// *program* is cached — every call still evaluates, so timings stay
/// honest.
///
/// A cache is tied to the frame it was first used with: binding encodes
/// frame-specific atom sets, so reusing a cache across frames panics or
/// answers wrongly, exactly like [`CompiledFormula::eval_bound`].
///
/// # Examples
///
/// ```
/// use hm_logic::{parse, EvalCache};
/// use hm_kripke::{ModelBuilder, AgentId};
/// let mut b = ModelBuilder::new(1);
/// let w0 = b.add_world("w0");
/// let p = b.atom("p");
/// b.set_atom(p, w0, true);
/// b.set_partition_by_key(AgentId::new(0), |w| w.index());
/// let m = b.build();
/// let f = parse("K0 p")?;
/// let mut cache = EvalCache::new();
/// assert!(cache.eval(&m, &f)?.contains(w0));
/// assert!(cache.eval(&m, &f)?.contains(w0)); // compiled + bound once
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct EvalCache {
    entries: HashMap<Formula, (CompiledFormula, Bound)>,
}

impl EvalCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates `f` on `frame`, compiling and binding it on first
    /// sight and reusing the bound program thereafter.
    ///
    /// # Errors
    ///
    /// First call per formula: compile errors ([`EvalError::UnboundVar`],
    /// [`EvalError::NonMonotone`]) and bind errors
    /// ([`CompiledFormula::bind`]). Cached calls are infallible.
    pub fn eval(&mut self, frame: &dyn Frame, f: &Formula) -> Result<WorldSet, EvalError> {
        if !self.entries.contains_key(f) {
            let compiled = compile(f)?;
            let bound = compiled.bind(frame)?;
            self.entries.insert(f.clone(), (compiled, bound));
        }
        let (compiled, bound) = &self.entries[f];
        Ok(compiled.eval_bound(frame, bound))
    }

    /// [`eval`](Self::eval) under a resource [`Budget`] — see
    /// [`CompiledFormula::eval_bound_budgeted`].
    ///
    /// # Errors
    ///
    /// Compile/bind errors as for [`eval`](Self::eval), plus
    /// [`EvalError::Limit`] on exhaustion, deadline, or cancellation.
    /// Formulas are cached only after a successful bind, so an
    /// interrupted evaluation leaves the cache consistent.
    pub fn eval_budgeted(
        &mut self,
        frame: &dyn Frame,
        f: &Formula,
        budget: &Budget,
    ) -> Result<WorldSet, EvalError> {
        if !self.entries.contains_key(f) {
            let compiled = compile(f)?;
            let bound = compiled.bind(frame)?;
            self.entries.insert(f.clone(), (compiled, bound));
        }
        let (compiled, bound) = &self.entries[f];
        compiled.eval_bound_budgeted(frame, bound, budget)
    }

    /// Number of distinct formulas compiled so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no formula has been compiled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Compiler {
    out: CompiledFormula,
    /// Binder stack: innermost last, each with its slot.
    scope: Vec<(String, u32)>,
    /// Occurrence counts from the pre-pass (CSE candidates only).
    counts: HashMap<Formula, u32>,
    /// Repeated subformulas already compiled: `(register, chunk)`.
    cse: HashMap<Formula, (u32, u32)>,
}

impl Compiler {
    /// Emits `f`, routing repeated closed subformulas through the CSE
    /// memo table.
    fn emit(&mut self, f: &Formula, ops: &mut Vec<Op>) -> Result<(), EvalError> {
        if self.counts.get(f).copied().unwrap_or(0) > 1 {
            if let Some(&(reg, body)) = self.cse.get(f) {
                ops.push(Op::Memo { reg, body });
                return Ok(());
            }
            let mut chunk = Vec::new();
            self.emit_node(f, &mut chunk)?;
            let body = self.push_chunk(chunk);
            let reg = self.out.num_regs;
            self.out.num_regs += 1;
            self.cse.insert(f.clone(), (reg, body));
            ops.push(Op::Memo { reg, body });
            return Ok(());
        }
        self.emit_node(f, ops)
    }
    fn push_chunk(&mut self, ops: Vec<Op>) -> u32 {
        let start = self.out.ops.len() as u32;
        self.out.ops.extend(ops);
        self.out
            .chunk_ranges
            .push((start, self.out.ops.len() as u32));
        (self.out.chunk_ranges.len() - 1) as u32
    }

    // Interning by linear scan: formula vocabularies are a handful of
    // atoms and groups, where a hash map costs more than it saves —
    // compile-time overhead lands directly on every one-shot `evaluate`.
    fn atom(&mut self, name: &str) -> u32 {
        if let Some(ix) = self.out.atoms.iter().position(|a| a == name) {
            return ix as u32;
        }
        self.out.atoms.push(name.to_string());
        (self.out.atoms.len() - 1) as u32
    }

    fn group(&mut self, g: &AgentGroup) -> u32 {
        if let Some(ix) = self.out.groups.iter().position(|h| h == g) {
            return ix as u32;
        }
        self.out.groups.push(g.clone());
        (self.out.groups.len() - 1) as u32
    }

    fn mark_temporal(&mut self) {
        self.out.mentions_temporal = true;
    }

    fn fresh_slot(&mut self) -> u32 {
        let s = self.out.num_slots;
        self.out.num_slots += 1;
        s
    }

    /// Emits one node of `f` in post-order onto `ops` (children through
    /// [`emit`](Self::emit)), recording frame checks in pre-order (the
    /// tree-walker's discovery order).
    fn emit_node(&mut self, f: &Formula, ops: &mut Vec<Op>) -> Result<(), EvalError> {
        match f {
            Formula::True => ops.push(Op::True),
            Formula::False => ops.push(Op::False),
            Formula::Atom(name) => {
                let ix = self.atom(name);
                ops.push(Op::Atom(ix));
            }
            Formula::Var(x) => {
                let slot = self
                    .scope
                    .iter()
                    .rev()
                    .find(|(name, _)| name == x)
                    .map(|&(_, s)| s)
                    .ok_or_else(|| EvalError::UnboundVar(x.clone()))?;
                ops.push(Op::Slot(slot));
            }
            Formula::Not(a) => {
                self.emit(a, ops)?;
                ops.push(Op::Not);
            }
            Formula::And(xs) => {
                for x in xs {
                    self.emit(x, ops)?;
                }
                ops.push(Op::And(xs.len() as u32));
            }
            Formula::Or(xs) => {
                for x in xs {
                    self.emit(x, ops)?;
                }
                ops.push(Op::Or(xs.len() as u32));
            }
            Formula::Implies(a, b) => {
                self.emit(a, ops)?;
                self.emit(b, ops)?;
                ops.push(Op::Implies);
            }
            Formula::Iff(a, b) => {
                self.emit(a, ops)?;
                self.emit(b, ops)?;
                ops.push(Op::Iff);
            }
            Formula::Knows(i, a) => {
                self.emit(a, ops)?;
                ops.push(Op::Knows(i.index() as u32));
            }
            Formula::EveryoneK(g, k, a) => {
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::EveryoneK { group, k: *k });
            }
            Formula::Someone(g, a) => {
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::Someone(group));
            }
            Formula::Distributed(g, a) => {
                let group = self.group(g);
                self.out.mentions_distributed = true;
                self.emit(a, ops)?;
                ops.push(Op::Distributed(group));
            }
            Formula::Common(g, a) => {
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::Common(group));
            }
            Formula::Gfp(x, body) | Formula::Lfp(x, body) => {
                check_positive(body, x)?;
                let gfp = matches!(f, Formula::Gfp(..));
                let slot = self.fresh_slot();
                self.scope.push((x.clone(), slot));
                let mut chunk = Vec::new();
                let result = self.emit(body, &mut chunk);
                self.scope.pop();
                result?;
                let body = self.push_chunk(chunk);
                ops.push(Op::Fix { gfp, slot, body });
            }
            Formula::Next(a) => {
                self.mark_temporal();
                self.emit(a, ops)?;
                ops.push(Op::Next);
            }
            Formula::Eventually(a) => {
                self.mark_temporal();
                self.emit(a, ops)?;
                ops.push(Op::Eventually);
            }
            Formula::Always(a) => {
                self.mark_temporal();
                self.emit(a, ops)?;
                ops.push(Op::Always);
            }
            Formula::Once(a) => {
                self.mark_temporal();
                self.emit(a, ops)?;
                ops.push(Op::Once);
            }
            Formula::EveryoneEps(g, eps, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::EveryoneEps { group, eps: *eps });
            }
            Formula::CommonEps(g, eps, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::CommonEps { group, eps: *eps });
            }
            Formula::EveryoneEv(g, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::EveryoneEv(group));
            }
            Formula::CommonEv(g, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::CommonEv(group));
            }
            Formula::KnowsAt(i, stamp, a) => {
                self.mark_temporal();
                self.emit(a, ops)?;
                ops.push(Op::KnowsAt {
                    agent: i.index() as u32,
                    stamp: *stamp,
                });
            }
            Formula::EveryoneTs(g, stamp, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::EveryoneTs {
                    group,
                    stamp: *stamp,
                });
            }
            Formula::CommonTs(g, stamp, a) => {
                self.mark_temporal();
                let group = self.group(g);
                self.emit(a, ops)?;
                ops.push(Op::CommonTs {
                    group,
                    stamp: *stamp,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A stack value: materialised set, or a lazy reference into the atom
/// table / fixed-point slots. Deferring materialisation means an atom
/// operand feeds `K_i`, `∩`, `∪` by reference — no per-node clone, the
/// very allocation the tree-walker pays at every `Atom` visit.
///
/// Slot references are sound because a slot's value only changes inside
/// its own `Fix` loop, *after* the body evaluation that may have pushed
/// (and by then consumed) references to it; distinct binders get
/// distinct slots.
#[derive(Debug)]
enum Val {
    Atom(u32),
    Slot(u32),
    Reg(u32),
    Owned(WorldSet),
}

struct Machine<'a> {
    compiled: &'a CompiledFormula,
    frame: &'a dyn Frame,
    ts: Option<&'a dyn TemporalStructure>,
    atoms: &'a [WorldSet],
    slots: Vec<WorldSet>,
    /// CSE registers, filled on first execution of their memo chunk.
    regs: Vec<Option<WorldSet>>,
    stack: Vec<Val>,
    n: usize,
    budget: &'a Budget,
}

impl Machine<'_> {
    fn ts(&self) -> &dyn TemporalStructure {
        self.ts.expect("temporal ops validated at bind time")
    }

    fn group(&self, ix: u32) -> &AgentGroup {
        &self.compiled.groups[ix as usize]
    }

    fn resolve<'v>(&'v self, v: &'v Val) -> &'v WorldSet {
        match v {
            Val::Atom(i) => &self.atoms[*i as usize],
            Val::Slot(i) => &self.slots[*i as usize],
            Val::Reg(i) => self.regs[*i as usize]
                .as_ref()
                .expect("memo chunk ran before its register is read"),
            Val::Owned(s) => s,
        }
    }

    fn owned_value(&self, v: Val) -> WorldSet {
        match v {
            Val::Owned(s) => s,
            other => self.resolve(&other).clone(),
        }
    }

    fn member_knowledge(&self, g: &AgentGroup, a: &WorldSet) -> Vec<WorldSet> {
        g.iter().map(|i| self.frame.knowledge_set(i, a)).collect()
    }

    /// Executes one chunk, leaving exactly one more value on the stack.
    fn exec_chunk(&mut self, chunk: usize) -> Result<(), LimitExceeded> {
        let (start, end) = self.compiled.chunk_ranges[chunk];
        for ix in start as usize..end as usize {
            self.exec_op(self.compiled.ops[ix])?;
        }
        Ok(())
    }

    fn exec_op(&mut self, op: Op) -> Result<(), LimitExceeded> {
        // One visited state per executed instruction; with an unlimited
        // budget this is a no-op, otherwise an amortized counter bump.
        self.budget.tick(Phase::Eval)?;
        match op {
            Op::True => self.stack.push(Val::Owned(WorldSet::full(self.n))),
            Op::False => self.stack.push(Val::Owned(WorldSet::empty(self.n))),
            Op::Atom(i) => self.stack.push(Val::Atom(i)),
            Op::Slot(i) => self.stack.push(Val::Slot(i)),
            Op::Not => {
                let a = self.pop();
                let out = self.resolve(&a).complement();
                self.stack.push(Val::Owned(out));
            }
            Op::And(k) => self.fold_n(k, true),
            Op::Or(k) => self.fold_n(k, false),
            Op::Implies => {
                let b = self.pop();
                let a = self.pop();
                let mut out = self.resolve(&a).complement();
                out.union_with(self.resolve(&b));
                self.stack.push(Val::Owned(out));
            }
            Op::Iff => {
                let b = self.pop();
                let a = self.pop();
                let (av, bv) = (self.resolve(&a), self.resolve(&b));
                let both = av.intersection(bv);
                let neither = av.complement().intersection(&bv.complement());
                self.stack.push(Val::Owned(both.union(&neither)));
            }
            Op::Knows(i) => {
                let a = self.pop();
                let out = self
                    .frame
                    .knowledge_set(AgentId::new(i as usize), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::EveryoneK { group, k } => {
                let a = self.pop();
                if k == 0 {
                    // `E^0 φ = φ` (the constructors forbid k = 0, but the
                    // enum variant is public; match the tree-walker).
                    self.stack.push(a);
                    return Ok(());
                }
                let g = self.group(group);
                let mut cur = self.frame.everyone_set(g, self.resolve(&a));
                for _ in 1..k {
                    cur = self.frame.everyone_set(g, &cur);
                }
                self.stack.push(Val::Owned(cur));
            }
            Op::Someone(group) => {
                let a = self.pop();
                let g = self.group(group);
                let av = self.resolve(&a);
                let mut out = WorldSet::empty(self.n);
                for i in g.iter() {
                    out.union_with(&self.frame.knowledge_set(i, av));
                }
                self.stack.push(Val::Owned(out));
            }
            Op::Distributed(group) => {
                let a = self.pop();
                let out = self
                    .frame
                    .distributed_set(self.group(group), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::Common(group) => {
                let a = self.pop();
                let out = self.frame.common_set(self.group(group), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::Fix { gfp, slot, body } => {
                self.slots[slot as usize] = if gfp {
                    WorldSet::full(self.n)
                } else {
                    WorldSet::empty(self.n)
                };
                loop {
                    // Deadline/cancellation re-check at every iteration:
                    // a single fixed-point round can be long on large
                    // frames, so don't rely on the amortized tick alone.
                    self.budget.check_now(Phase::Eval)?;
                    self.exec_chunk(body as usize)?;
                    let top = self.pop();
                    let next = self.owned_value(top);
                    if next == self.slots[slot as usize] {
                        self.stack.push(Val::Owned(next));
                        break;
                    }
                    self.slots[slot as usize] = next;
                }
            }
            Op::Memo { reg, body } => {
                if self.regs[reg as usize].is_none() {
                    self.exec_chunk(body as usize)?;
                    let top = self.pop();
                    self.regs[reg as usize] = Some(self.owned_value(top));
                }
                self.stack.push(Val::Reg(reg));
            }
            Op::Next => {
                let a = self.pop();
                let out = temporal::next_set(self.ts(), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::Eventually => {
                let a = self.pop();
                let out = temporal::eventually_set(self.ts(), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::Always => {
                let a = self.pop();
                let out = temporal::always_set(self.ts(), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::Once => {
                let a = self.pop();
                let out = temporal::once_set(self.ts(), self.resolve(&a));
                self.stack.push(Val::Owned(out));
            }
            Op::EveryoneEps { group, eps } => {
                let a = self.pop();
                let g = self.group(group);
                let k_sets = self.member_knowledge(g, self.resolve(&a));
                let out = temporal::everyone_eps_set(self.ts(), g, eps, &k_sets);
                self.stack.push(Val::Owned(out));
            }
            Op::CommonEps { group, eps } => {
                let av = self.pop();
                let out = self.temporal_gfp(
                    &av,
                    |m, g, arg| {
                        let k_sets = m.member_knowledge(g, arg);
                        temporal::everyone_eps_set(m.ts(), g, eps, &k_sets)
                    },
                    group,
                )?;
                self.stack.push(Val::Owned(out));
            }
            Op::EveryoneEv(group) => {
                let a = self.pop();
                let g = self.group(group);
                let k_sets = self.member_knowledge(g, self.resolve(&a));
                let out = temporal::everyone_ev_set(self.ts(), g, &k_sets);
                self.stack.push(Val::Owned(out));
            }
            Op::CommonEv(group) => {
                let av = self.pop();
                let out = self.temporal_gfp(
                    &av,
                    |m, g, arg| {
                        let k_sets = m.member_knowledge(g, arg);
                        temporal::everyone_ev_set(m.ts(), g, &k_sets)
                    },
                    group,
                )?;
                self.stack.push(Val::Owned(out));
            }
            Op::KnowsAt { agent, stamp } => {
                let a = self.pop();
                let i = AgentId::new(agent as usize);
                let k = self.frame.knowledge_set(i, self.resolve(&a));
                let out = temporal::knows_at_set(self.ts(), i, stamp, &k);
                self.stack.push(Val::Owned(out));
            }
            Op::EveryoneTs { group, stamp } => {
                let a = self.pop();
                let g = self.group(group);
                let k_sets = self.member_knowledge(g, self.resolve(&a));
                let out = temporal::everyone_ts_set(self.ts(), g, stamp, &k_sets);
                self.stack.push(Val::Owned(out));
            }
            Op::CommonTs { group, stamp } => {
                let av = self.pop();
                let out = self.temporal_gfp(
                    &av,
                    |m, g, arg| {
                        let k_sets = m.member_knowledge(g, arg);
                        temporal::everyone_ts_set(m.ts(), g, stamp, &k_sets)
                    },
                    group,
                )?;
                self.stack.push(Val::Owned(out));
            }
        }
        Ok(())
    }

    /// The shared `νX. Op_G(φ ∧ X)` downward iteration of the `C^ε`,
    /// `C^◇` and `C^T` variants.
    fn temporal_gfp(
        &self,
        av: &Val,
        step: impl Fn(&Self, &AgentGroup, &WorldSet) -> WorldSet,
        group: u32,
    ) -> Result<WorldSet, LimitExceeded> {
        let g = self.group(group);
        let av = self.resolve(av);
        let mut x = WorldSet::full(self.n);
        loop {
            self.budget.check_now(Phase::Eval)?;
            let arg = av.intersection(&x);
            let next = step(self, g, &arg);
            if next == x {
                return Ok(x);
            }
            x = next;
        }
    }

    fn pop(&mut self) -> Val {
        self.stack.pop().expect("stack discipline")
    }

    /// Pops `k` operands and pushes their intersection (`and`) or union:
    /// the first *owned* operand (if any) becomes the accumulator, so a
    /// run of atom references costs exactly one clone.
    fn fold_n(&mut self, k: u32, and: bool) {
        if k == 0 {
            let unit = if and {
                WorldSet::full(self.n)
            } else {
                WorldSet::empty(self.n)
            };
            self.stack.push(Val::Owned(unit));
            return;
        }
        let at = self.stack.len() - k as usize;
        let mut operands: Vec<Val> = self.stack.drain(at..).collect();
        let acc_ix = operands
            .iter()
            .position(|v| matches!(v, Val::Owned(_)))
            .unwrap_or(0);
        let mut acc = self.owned_value(operands.swap_remove(acc_ix));
        for v in &operands {
            if and {
                acc.intersect_with(self.resolve(v));
            } else {
                acc.union_with(self.resolve(v));
            }
        }
        self.stack.push(Val::Owned(acc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_tree;
    use crate::parser::parse;
    use hm_kripke::{random_model, ModelBuilder, RandomModelSpec, WorldId};

    fn model() -> hm_kripke::KripkeModel {
        let mut b = ModelBuilder::new(2);
        for i in 0..4 {
            b.add_world(format!("w{i}"));
        }
        let p = b.atom("p");
        let q = b.atom("q");
        b.set_atom(p, WorldId::new(0), true);
        b.set_atom(p, WorldId::new(1), true);
        b.set_atom(q, WorldId::new(2), true);
        b.set_partition_by_key(AgentId::new(0), |w| w.index() / 2);
        b.set_partition_by_key(AgentId::new(1), |w| w.index() % 2);
        b.build()
    }

    #[test]
    fn compiled_matches_tree_walk_on_static_formulas() {
        let m = model();
        for src in [
            "p",
            "!p & q",
            "p -> q",
            "p <-> q",
            "K0 p | K1 q",
            "E{0,1} p",
            "E^3{0,1} (p | q)",
            "S{0,1} p & D{0,1} q",
            "C{0,1} (p | !p)",
            "nu X. E{0,1} (p & $X)",
            "mu X. p | S{0,1} $X",
            "true & !false",
        ] {
            let f = parse(src).unwrap();
            let compiled = compile(&f).unwrap();
            assert_eq!(
                compiled.eval(&m).unwrap(),
                evaluate_tree(&m, &f).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn compiled_matches_tree_walk_on_random_models() {
        let f = parse("nu X. (q0 -> E{0,1} (q1 | $X)) & C{0,1} (q0 | !q0)").unwrap();
        let compiled = compile(&f).unwrap();
        for seed in 0..10 {
            let m = random_model(seed, RandomModelSpec::default());
            assert_eq!(
                compiled.eval(&m).unwrap(),
                evaluate_tree(&m, &f).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bind_reuse_across_evaluations() {
        let m = model();
        let f = parse("K0 (p & !q) | K1 q").unwrap();
        let compiled = compile(&f).unwrap();
        let bound = compiled.bind(&m).unwrap();
        let a = compiled.eval_bound(&m, &bound);
        let b = compiled.eval_bound(&m, &bound);
        assert_eq!(a, b);
        assert_eq!(a, evaluate_tree(&m, &f).unwrap());
    }

    #[test]
    fn compile_time_errors() {
        assert_eq!(
            compile(&Formula::var("X")).unwrap_err(),
            EvalError::UnboundVar("X".into())
        );
        assert_eq!(
            compile(&Formula::gfp("X", Formula::not(Formula::var("X")))).unwrap_err(),
            EvalError::NonMonotone("X".into())
        );
    }

    #[test]
    fn bind_time_errors_in_tree_walk_order() {
        let m = model();
        assert_eq!(
            compile(&Formula::atom("zap"))
                .unwrap()
                .eval(&m)
                .unwrap_err(),
            EvalError::UnknownAtom("zap".into())
        );
        // The tree-walker checks the agent range before recursing into the
        // subformula, so the agent error wins over the unknown atom.
        let f = Formula::knows(AgentId::new(9), Formula::atom("zap"));
        assert_eq!(
            compile(&f).unwrap().eval(&m).unwrap_err(),
            EvalError::AgentOutOfRange(9)
        );
        assert_eq!(
            compile(&Formula::next(Formula::atom("zap")))
                .unwrap()
                .eval(&m)
                .unwrap_err(),
            EvalError::NoTemporalStructure("next".into())
        );
    }

    #[test]
    fn interning_dedups_atoms_and_groups() {
        let f = parse("E{0,1} p & C{0,1} p & E{0,1} q & p").unwrap();
        let compiled = compile(&f).unwrap();
        assert_eq!(compiled.atom_names().collect::<Vec<_>>(), vec!["p", "q"]);
        assert_eq!(compiled.groups.len(), 1);
    }

    #[test]
    fn slots_resolve_shadowing() {
        let m = model();
        // Inner binder shadows X; both fixpoints get distinct slots.
        let f = parse("nu X. p & (nu X. p & $X) & $X").unwrap();
        let compiled = compile(&f).unwrap();
        assert_eq!(compiled.num_slots, 2);
        assert_eq!(compiled.eval(&m).unwrap(), evaluate_tree(&m, &f).unwrap());
    }

    #[test]
    fn everyone_k_zero_is_identity() {
        // The constructors forbid k = 0, but the enum variant is public;
        // both evaluators must treat E^0 as the identity.
        let m = model();
        let f = Formula::EveryoneK(AgentGroup::all(2), 0, Formula::atom("p")).arc();
        assert_eq!(
            compile(&f).unwrap().eval(&m).unwrap(),
            evaluate_tree(&m, &f).unwrap()
        );
        assert_eq!(
            compile(&f).unwrap().eval(&m).unwrap(),
            evaluate_tree(&m, &Formula::atom("p")).unwrap()
        );
    }

    #[test]
    fn quotient_safety_flags() {
        let plain = compile(&parse("C{0,1} p").unwrap()).unwrap();
        assert!(plain.quotient_safe());
        let dist = compile(&parse("D{0,1} p").unwrap()).unwrap();
        assert!(dist.mentions_distributed() && !dist.quotient_safe());
        let temp = compile(&parse("even p").unwrap()).unwrap();
        assert!(temp.mentions_temporal() && !temp.quotient_safe());
    }
}
