//! Runs: complete executions of a distributed system.
//!
//! A [`Run`] records, for each processor, its wake-up time, initial state,
//! clock readings and timed event sequence over a finite horizon — the
//! discrete-time truncation of the paper's infinite runs (Section 5). The
//! points of a run are the pairs `(r, t)` for `0 ≤ t ≤ horizon`.

use crate::event::{Event, TimedEvent};
use hm_kripke::AgentId;

/// One processor's complete record within a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcRecord {
    /// Real time at which the processor joins the system (`t_init`);
    /// `None` if it never wakes during the horizon.
    pub wake_time: Option<u64>,
    /// The processor's initial local state.
    pub initial_state: u64,
    /// Clock readings per tick (`clock[t as usize]`, length `horizon+1`),
    /// or `None` in clockless systems. Must be monotone nondecreasing.
    pub clock: Option<Vec<u64>>,
    /// Events observed by this processor, sorted by time (stable order
    /// within a tick is the order of occurrence).
    pub events: Vec<TimedEvent>,
}

impl ProcRecord {
    /// Clock reading at real time `t`, if the processor is awake and has a
    /// clock.
    pub fn clock_at(&self, t: u64) -> Option<u64> {
        match (self.wake_time, &self.clock) {
            (Some(w), Some(c)) if t >= w => c.get(t as usize).copied(),
            _ => None,
        }
    }

    /// `true` if the processor is awake at time `t`.
    pub fn awake_at(&self, t: u64) -> bool {
        self.wake_time.is_some_and(|w| t >= w)
    }

    /// Events strictly before real time `t` (the history convention of
    /// Section 5: messages sent/received *at* `t` are excluded).
    pub fn events_before(&self, t: u64) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().take_while(move |e| e.time < t)
    }

    /// Number of receive events strictly before `t`.
    pub fn recvs_before(&self, t: u64) -> usize {
        self.events_before(t).filter(|e| e.event.is_recv()).count()
    }
}

/// A finite run: per-processor records over times `0..=horizon`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Run {
    /// Human-readable name (e.g. the adversary schedule that produced it).
    pub name: String,
    /// Per-processor records, indexed by agent.
    pub procs: Vec<ProcRecord>,
    /// Largest time index; the run has points `0..=horizon`.
    pub horizon: u64,
}

impl Run {
    /// Number of points (`horizon + 1`).
    pub fn num_points(&self) -> u64 {
        self.horizon + 1
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// The record of processor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn proc(&self, i: AgentId) -> &ProcRecord {
        &self.procs[i.index()]
    }

    /// Total number of receive events strictly before `t`, over all
    /// processors — the message-count `d(r)` in the proof of Theorem 5.
    pub fn deliveries_before(&self, t: u64) -> usize {
        self.procs.iter().map(|p| p.recvs_before(t)).sum()
    }

    /// `true` if no processor receives any message at any time `≥ from`.
    pub fn silent_from(&self, from: u64) -> bool {
        self.procs.iter().all(|p| {
            p.events
                .iter()
                .all(|e| !(e.event.is_recv() && e.time >= from))
        })
    }

    /// `true` if the two runs have the same initial configuration (wake
    /// times and initial states) and the same clock readings — the
    /// "twin" hypothesis of Theorems 5 and 7.
    pub fn same_initial_config_and_clocks(&self, other: &Run) -> bool {
        self.procs.len() == other.procs.len()
            && self.procs.iter().zip(&other.procs).all(|(a, b)| {
                a.wake_time == b.wake_time
                    && a.initial_state == b.initial_state
                    && a.clock == b.clock
            })
    }
}

/// Builder for [`Run`] with validation (C-BUILDER).
///
/// # Examples
///
/// ```
/// use hm_runs::{RunBuilder, Event, Message};
/// use hm_kripke::AgentId;
/// let run = RunBuilder::new("r0", 2, 3)
///     .wake(AgentId::new(0), 0, 7)
///     .wake(AgentId::new(1), 0, 7)
///     .event(AgentId::new(0), 1, Event::Send { to: AgentId::new(1), msg: Message::tagged(1) })
///     .event(AgentId::new(1), 2, Event::Recv { from: AgentId::new(0), msg: Message::tagged(1) })
///     .build();
/// assert_eq!(run.deliveries_before(3), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RunBuilder {
    name: String,
    horizon: u64,
    procs: Vec<ProcRecord>,
}

impl RunBuilder {
    /// Starts a run with `num_procs` processors, all initially asleep, over
    /// times `0..=horizon`.
    pub fn new(name: impl Into<String>, num_procs: usize, horizon: u64) -> Self {
        RunBuilder {
            name: name.into(),
            horizon,
            procs: vec![
                ProcRecord {
                    wake_time: None,
                    initial_state: 0,
                    clock: None,
                    events: Vec::new(),
                };
                num_procs
            ],
        }
    }

    /// Wakes processor `i` at time `t` with the given initial state.
    pub fn wake(mut self, i: AgentId, t: u64, initial_state: u64) -> Self {
        let p = &mut self.procs[i.index()];
        p.wake_time = Some(t);
        p.initial_state = initial_state;
        self
    }

    /// Gives processor `i` a perfect clock: reading `t + offset` at time
    /// `t` (a convenient common case; use [`clock_readings`] for arbitrary
    /// monotone clocks).
    ///
    /// [`clock_readings`]: Self::clock_readings
    pub fn perfect_clock(mut self, i: AgentId, offset: u64) -> Self {
        let readings = (0..=self.horizon).map(|t| t + offset).collect();
        self.procs[i.index()].clock = Some(readings);
        self
    }

    /// Sets processor `i`'s clock readings explicitly (`readings[t]` is the
    /// reading at time `t`; length must be `horizon + 1`).
    pub fn clock_readings(mut self, i: AgentId, readings: Vec<u64>) -> Self {
        self.procs[i.index()].clock = Some(readings);
        self
    }

    /// Records an event for processor `i` at time `t`.
    pub fn event(mut self, i: AgentId, t: u64, event: Event) -> Self {
        self.procs[i.index()].events.push(TimedEvent::new(t, event));
        self
    }

    /// Finalises the run.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails: events out of `wake..=horizon`,
    /// unsorted event times, non-monotone or wrongly-sized clocks, or an
    /// event on a processor that never wakes.
    pub fn build(mut self) -> Run {
        for (i, p) in self.procs.iter_mut().enumerate() {
            p.events.sort_by_key(|e| e.time);
            if let Some(first) = p.events.first() {
                let wake = p
                    .wake_time
                    .unwrap_or_else(|| panic!("proc {i} has events but never wakes"));
                assert!(
                    first.time >= wake,
                    "proc {i}: event at {} before wake {}",
                    first.time,
                    wake
                );
            }
            if let Some(last) = p.events.last() {
                assert!(
                    last.time <= self.horizon,
                    "proc {i}: event at {} beyond horizon {}",
                    last.time,
                    self.horizon
                );
            }
            if let Some(c) = &p.clock {
                assert_eq!(
                    c.len() as u64,
                    self.horizon + 1,
                    "proc {i}: clock has {} readings for horizon {}",
                    c.len(),
                    self.horizon
                );
                assert!(
                    c.windows(2).all(|w| w[0] <= w[1]),
                    "proc {i}: clock readings must be nondecreasing"
                );
            }
            if let Some(w) = p.wake_time {
                assert!(
                    w <= self.horizon,
                    "proc {i}: wake time {} beyond horizon {}",
                    w,
                    self.horizon
                );
            }
        }
        Run {
            name: self.name,
            procs: self.procs,
            horizon: self.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Message;

    fn a(i: usize) -> AgentId {
        AgentId::new(i)
    }

    fn send(to: usize, tag: u32) -> Event {
        Event::Send {
            to: a(to),
            msg: Message::tagged(tag),
        }
    }

    fn recv(from: usize, tag: u32) -> Event {
        Event::Recv {
            from: a(from),
            msg: Message::tagged(tag),
        }
    }

    #[test]
    fn builder_sorts_and_counts() {
        let r = RunBuilder::new("r", 2, 5)
            .wake(a(0), 0, 1)
            .wake(a(1), 0, 2)
            .event(a(1), 4, recv(0, 2))
            .event(a(1), 2, recv(0, 1))
            .event(a(0), 1, send(1, 1))
            .event(a(0), 3, send(1, 2))
            .build();
        assert_eq!(r.num_points(), 6);
        assert_eq!(r.proc(a(1)).events[0].time, 2, "events sorted");
        assert_eq!(r.deliveries_before(3), 1);
        assert_eq!(r.deliveries_before(5), 2);
        assert!(!r.silent_from(4));
        assert!(r.silent_from(5));
    }

    #[test]
    fn events_before_excludes_current_tick() {
        let r = RunBuilder::new("r", 1, 3)
            .wake(a(0), 0, 0)
            .event(a(0), 2, send(0, 1))
            .build();
        assert_eq!(r.proc(a(0)).events_before(2).count(), 0);
        assert_eq!(r.proc(a(0)).events_before(3).count(), 1);
    }

    #[test]
    fn clock_accessors() {
        let r = RunBuilder::new("r", 1, 3)
            .wake(a(0), 1, 0)
            .clock_readings(a(0), vec![5, 5, 6, 8])
            .build();
        let p = r.proc(a(0));
        assert_eq!(p.clock_at(0), None, "asleep: no reading");
        assert_eq!(p.clock_at(2), Some(6));
        assert!(!p.awake_at(0));
        assert!(p.awake_at(1));
    }

    #[test]
    fn twin_condition() {
        let r1 = RunBuilder::new("a", 2, 2)
            .wake(a(0), 0, 3)
            .wake(a(1), 1, 4)
            .build();
        let r2 = RunBuilder::new("b", 2, 2)
            .wake(a(0), 0, 3)
            .wake(a(1), 1, 4)
            .event(a(0), 1, send(1, 9))
            .build();
        assert!(
            r1.same_initial_config_and_clocks(&r2),
            "events don't matter"
        );
        let r3 = RunBuilder::new("c", 2, 2).wake(a(0), 0, 3).build();
        assert!(!r1.same_initial_config_and_clocks(&r3));
    }

    #[test]
    #[should_panic(expected = "before wake")]
    fn event_before_wake_panics() {
        RunBuilder::new("r", 1, 3)
            .wake(a(0), 2, 0)
            .event(a(0), 1, send(0, 1))
            .build();
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn event_beyond_horizon_panics() {
        RunBuilder::new("r", 1, 3)
            .wake(a(0), 0, 0)
            .event(a(0), 4, send(0, 1))
            .build();
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_clock_panics() {
        RunBuilder::new("r", 1, 2)
            .wake(a(0), 0, 0)
            .clock_readings(a(0), vec![3, 2, 4])
            .build();
    }

    #[test]
    #[should_panic(expected = "never wakes")]
    fn event_without_wake_panics() {
        RunBuilder::new("r", 1, 2)
            .event(a(0), 1, send(0, 1))
            .build();
    }
}
