//! The runs-and-systems model of distributed computation.
//!
//! Implements Sections 5–6 of Halpern & Moses, *Knowledge and Common
//! Knowledge in a Distributed Environment* (PODC '84; journal version
//! JACM 1990): processors with
//! local histories and optional clocks, [`Run`]s as complete executions,
//! [`System`]s as sets of runs, [`ViewFunction`]s assigning views to
//! points, and [`InterpretedSystem`]s — the triple `(R, π, v)` — which
//! materialise the indistinguishability Kripke model and plug into the
//! `hm-logic` model checker (including its temporal operators).
//!
//! The [`conditions`] module turns the structural hypotheses of the
//! paper's impossibility theorems (NG1/NG2, NG1′, temporal imprecision)
//! into decidable checks over finite systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
mod event;
mod intern;
mod interpreted;
mod run;
mod system;
mod view;

pub use event::{Event, Message, TimedEvent};
pub use intern::ViewInterner;
pub use interpreted::{FactFn, InterpretedSystem, InterpretedSystemBuilder};
pub use run::{ProcRecord, Run, RunBuilder};
pub use system::{Point, RunId, System};
pub use view::{
    complete_history_key, encode_complete_history, last_event_view, ClockOnly, CompleteHistory,
    SharedLambda, StateProjection, ViewFunction,
};
