//! System-level hypotheses of the paper's theorems, as executable checks.
//!
//! Theorems 5, 7 and 8 of Halpern–Moses quantify over systems satisfying
//! structural conditions — *communication not guaranteed* (NG1 + NG2),
//! *unbounded message delivery* (NG1′ + NG2), and *temporal imprecision*.
//! On a finite enumerated system these conditions are decidable; this
//! module implements them so experiments can first *verify the hypothesis*
//! and then check the theorem's conclusion.

use crate::run::{ProcRecord, Run};
use crate::system::{RunId, System};
use crate::view::encode_complete_history;
use hm_kripke::AgentId;
use std::cell::RefCell;

thread_local! {
    /// Scratch pair for history comparisons: the NG checkers compare
    /// histories inside O(runs² × horizon²) loops, so a per-call key
    /// allocation is the dominant cost.
    static HISTORY_BUFS: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// `h(pa, ta) == h(pb, tb)` under the complete-history encoding, comparing
/// through reused thread-local scratch buffers (no allocation after the
/// first call).
fn history_keys_equal(pa: &ProcRecord, ta: u64, pb: &ProcRecord, tb: u64) -> bool {
    HISTORY_BUFS.with(|bufs| {
        let (a, b) = &mut *bufs.borrow_mut();
        a.clear();
        b.clear();
        encode_complete_history(pa, ta, a);
        encode_complete_history(pb, tb, b);
        a == b
    })
}

/// `true` iff `h(p_i, ra, t) = h(p_i, rb, t)` under the complete-history
/// interpretation (Section 5's history equality).
pub fn histories_equal(ra: &Run, rb: &Run, i: AgentId, t: u64) -> bool {
    history_keys_equal(ra.proc(i), t, rb.proc(i), t)
}

/// `true` iff `rb` *extends* the point `(ra, t)`: every processor has the
/// same history in both runs at every `t' ≤ t` (Section 5). The relation
/// is symmetric in the two runs.
pub fn extends(ra: &Run, rb: &Run, t: u64) -> bool {
    let n = ra.num_procs().min(rb.num_procs());
    (0..n).all(|i| {
        let i = AgentId::new(i);
        (0..=t).all(|u| histories_equal(ra, rb, i, u))
    })
}

/// Memoised prefix-agreement over all run pairs of a system: for each
/// ordered pair `(a, b)` and processor `i`, the number of initial times
/// `u = 0, 1, …` at which `h(p_i, a, u) = h(p_i, b, u)` — so "`p_i`'s
/// histories agree at every `u ≤ t`" is the O(1) test `upto > t`.
///
/// The NG checkers ask exactly these questions inside
/// O(runs² × horizon²) loops; without the table every ask replays the
/// [`extends`] prefix scan, which dominates their cost (b05). Scans stop
/// at the first mismatch or at the pair's smaller horizon, so the whole
/// table costs what a single full `extends` sweep per pair does.
struct AgreementTable {
    num_runs: usize,
    num_procs: usize,
    /// `upto[(a * num_runs + b) * num_procs + i]`.
    upto: Vec<u64>,
    /// `min_upto[a * num_runs + b]` = min over processors.
    min_upto: Vec<u64>,
}

impl AgreementTable {
    fn new(system: &System) -> Self {
        let nr = system.num_runs();
        let np = system.num_procs();
        let mut upto = vec![0u64; nr * nr * np];
        let mut min_upto = vec![0u64; nr * nr];
        for (ia, ra) in system.runs() {
            for (ib, rb) in system.runs() {
                // The scan runs to the *outer* run's horizon, exactly as
                // the checkers' `extends(ra, rb, t)` calls did: `rb` may
                // be shorter and still agree at every `u ≤ t` (clockless
                // histories are well-defined past a run's horizon).
                // That makes the table ordered, not symmetric.
                let cap = ra.horizon + 1;
                let mut min_len = u64::MAX;
                for i in 0..np {
                    let len = if ia == ib {
                        cap
                    } else {
                        let (pa, pb) = (ra.proc(AgentId::new(i)), rb.proc(AgentId::new(i)));
                        (0..cap)
                            .take_while(|&u| history_keys_equal(pa, u, pb, u))
                            .count() as u64
                    };
                    upto[(ia.index() * nr + ib.index()) * np + i] = len;
                    min_len = min_len.min(len);
                }
                min_upto[ia.index() * nr + ib.index()] = min_len;
            }
        }
        AgreementTable {
            num_runs: nr,
            num_procs: np,
            upto,
            min_upto,
        }
    }

    /// `h(p_i, a, u) = h(p_i, b, u)` for every `u ≤ t`.
    fn agrees(&self, a: RunId, b: RunId, i: usize, t: u64) -> bool {
        self.upto[(a.index() * self.num_runs + b.index()) * self.num_procs + i] > t
    }

    /// [`extends`]`(a, b, t)`.
    fn extends(&self, a: RunId, b: RunId, t: u64) -> bool {
        self.min_upto[a.index() * self.num_runs + b.index()] > t
    }
}

/// Per-run sorted receive times (`recvs[proc]`), for O(log) "no message
/// received in `[from, to]`" interval queries.
struct RecvTimes {
    by_proc: Vec<Vec<u64>>,
}

impl RecvTimes {
    fn new(run: &Run) -> Self {
        RecvTimes {
            by_proc: run
                .procs
                .iter()
                .map(|p| {
                    p.events
                        .iter()
                        .filter(|e| e.event.is_recv())
                        .map(|e| e.time)
                        .collect()
                })
                .collect(),
        }
    }

    /// `true` iff processor `i` receives nothing in the closed interval.
    fn quiet(&self, i: usize, from: u64, to: u64) -> bool {
        let times = &self.by_proc[i];
        times.partition_point(|&t| t < from) == times.partition_point(|&t| t <= to)
    }

    /// `true` iff no processor receives anything in the closed interval.
    fn all_quiet(&self, from: u64, to: u64) -> bool {
        (0..self.by_proc.len()).all(|i| self.quiet(i, from, to))
    }
}

/// A violation of one of the NG conditions, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Run at which the condition fails.
    pub run: RunId,
    /// Time at which the condition fails.
    pub time: u64,
    /// Description of the missing witness.
    pub reason: String,
}

/// Checks NG1: for every run `r` and time `t`, some run `r'` extends
/// `(r, t)`, has the same initial configuration and clock readings, and
/// has no messages received at or after `t`.
///
/// Returns the first violation, or `None` if the condition holds (on this
/// finite truncation).
pub fn check_ng1(system: &System) -> Option<Violation> {
    let agree = AgreementTable::new(system);
    for (id, r) in system.runs() {
        for t in 0..=r.horizon {
            let found = system.runs().any(|(id2, r2)| {
                r.same_initial_config_and_clocks(r2)
                    && agree.extends(id, id2, t)
                    && r2.silent_from(t)
            });
            if !found {
                return Some(Violation {
                    run: id,
                    time: t,
                    reason: "no silent extension with matching configuration".into(),
                });
            }
        }
    }
    None
}

/// Checks NG1′ (unbounded message delivery): for every run `r` and times
/// `t ≤ u`, some run `r'` extends `(r, t)`, has the same initial
/// configuration and clock readings, and has no messages received in
/// `[t, u]`.
pub fn check_ng1_prime(system: &System) -> Option<Violation> {
    let agree = AgreementTable::new(system);
    let recvs: Vec<RecvTimes> = system.runs().map(|(_, r)| RecvTimes::new(r)).collect();
    for (id, r) in system.runs() {
        for t in 0..=r.horizon {
            for u in t..=r.horizon {
                let found = system.runs().any(|(id2, r2)| {
                    r.same_initial_config_and_clocks(r2)
                        && agree.extends(id, id2, t)
                        && recvs[id2.index()].all_quiet(t, u)
                });
                if !found {
                    return Some(Violation {
                        run: id,
                        time: t,
                        reason: format!("no extension silent on [{t},{u}]"),
                    });
                }
            }
        }
    }
    None
}

/// Checks NG2: whenever processor `p_i` receives no messages in the open
/// interval `(t', t)` of run `r`, there is a run `r'` extending `(r, t')`
/// with the same initial configuration and clock readings, in which
/// `p_i`'s history agrees with `r` up to `t`, and no other processor
/// receives a message in `[t', t)`.
pub fn check_ng2(system: &System) -> Option<Violation> {
    let agree = AgreementTable::new(system);
    let recvs: Vec<RecvTimes> = system.runs().map(|(_, r)| RecvTimes::new(r)).collect();
    for (id, r) in system.runs() {
        for i in 0..system.num_procs() {
            for tp in 0..=r.horizon {
                for t in tp..=r.horizon {
                    // Hypothesis: p_i receives nothing in the open (t', t).
                    if t > tp + 1 && !recvs[id.index()].quiet(i, tp + 1, t - 1) {
                        continue;
                    }
                    let found = system.runs().any(|(id2, r2)| {
                        r.same_initial_config_and_clocks(r2)
                            && agree.extends(id, id2, tp)
                            && agree.agrees(id, id2, i, t)
                            && (0..system.num_procs()).all(|j| {
                                // Half-open [t', t): closed [t', t-1].
                                j == i || t == tp || recvs[id2.index()].quiet(j, tp, t - 1)
                            })
                    });
                    if !found {
                        return Some(Violation {
                            run: id,
                            time: t,
                            reason: format!("NG2 witness missing for p{i} on ({tp},{t})"),
                        });
                    }
                }
            }
        }
    }
    None
}

/// Checks the discrete form of *temporal imprecision* (Appendix B): for
/// every run `r`, time `t > 0`, and ordered pair of distinct processors
/// `(p_i, p_j)`, there is a run `r'` in which `p_i` runs one tick late —
/// or one tick early — relative to `r` while `p_j` is unshifted: for all
/// `t' < t`, either `h(p_i, r, t') = h(p_i, r', t'+1)` or
/// `h(p_i, r, t'+1) = h(p_i, r', t')`, with `h(p_j, r, t') = h(p_j, r', t')`
/// in both cases.
///
/// The paper's continuous-time definition uses only the "late" direction,
/// quantified over all `δ' ∈ [0, δ)`; in discrete time the smallest shift
/// is a whole tick, and a run whose laggard already wakes latest has no
/// later variant, so we accept the early direction too — either
/// orientation supports the two-edge downward walk of Lemma 14
/// (`(r,t) → (r',t−1) → (r,t−1)`), which is all the imprecision
/// hypothesis is used for.
///
/// Returns the first `(run, t, i, j)` with no witness, or `None`.
pub fn check_temporal_imprecision(system: &System) -> Option<Violation> {
    for (id, r) in system.runs() {
        for t in 1..=r.horizon {
            for i in 0..system.num_procs() {
                for j in 0..system.num_procs() {
                    if i == j {
                        continue;
                    }
                    if shift_witness(system, r, t, AgentId::new(i), AgentId::new(j)).is_none() {
                        return Some(Violation {
                            run: id,
                            time: t,
                            reason: format!("no 1-tick shift witness for (p{i}, p{j})"),
                        });
                    }
                }
            }
        }
    }
    None
}

/// Finds a run `r'` witnessing a one-tick shift (late or early) of `p_i`
/// against `p_j` before time `t` (see [`check_temporal_imprecision`]).
pub fn shift_witness(system: &System, r: &Run, t: u64, pi: AgentId, pj: AgentId) -> Option<RunId> {
    let late = |r2: &Run| {
        (0..t).all(|u| {
            u < r2.horizon
                && history_keys_equal(r.proc(pi), u, r2.proc(pi), u + 1)
                && histories_equal(r, r2, pj, u)
        })
    };
    let early = |r2: &Run| {
        (0..t).all(|u| {
            u < r.horizon
                && history_keys_equal(r.proc(pi), u + 1, r2.proc(pi), u)
                && histories_equal(r, r2, pj, u)
        })
    };
    system
        .runs()
        .find(|(_, r2)| late(r2) || early(r2))
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Message};
    use crate::run::RunBuilder;

    fn a(i: usize) -> AgentId {
        AgentId::new(i)
    }

    fn send(to: usize, tag: u32) -> Event {
        Event::Send {
            to: a(to),
            msg: Message::tagged(tag),
        }
    }

    fn recv(from: usize, tag: u32) -> Event {
        Event::Recv {
            from: a(from),
            msg: Message::tagged(tag),
        }
    }

    fn base(name: &str, horizon: u64) -> RunBuilder {
        RunBuilder::new(name, 2, horizon)
            .wake(a(0), 0, 0)
            .wake(a(1), 0, 0)
    }

    #[test]
    fn extends_and_history_equality() {
        // Same prefix through t=1; diverge at t=2 (delivery vs loss).
        let r1 = base("deliver", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 2, recv(0, 1))
            .build();
        let r2 = base("lose", 3).event(a(0), 1, send(1, 1)).build();
        // Histories at t exclude events at t, so they agree up to t=2.
        assert!(extends(&r1, &r2, 2));
        assert!(!extends(&r1, &r2, 3));
        assert!(histories_equal(&r1, &r2, a(0), 3), "sender can't tell");
        assert!(!histories_equal(&r1, &r2, a(1), 3));
    }

    #[test]
    fn ng1_holds_with_silent_twins() {
        // System: quiet run + send-but-lost run + delivered run.
        let quiet = base("quiet", 3).build();
        let lost = base("lost", 3).event(a(0), 1, send(1, 1)).build();
        let deliver = base("deliver", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 2, recv(0, 1))
            .build();
        let sys = System::new(vec![quiet, lost, deliver]);
        assert_eq!(check_ng1(&sys), None);
    }

    #[test]
    fn ng1_fails_when_delivery_is_forced() {
        // Only the delivered run exists: at t ≤ 2 there is no silent
        // extension.
        let deliver = base("deliver", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 2, recv(0, 1))
            .build();
        let sys = System::new(vec![deliver]);
        let v = check_ng1(&sys).expect("NG1 must fail");
        assert!(v.time <= 2);
    }

    #[test]
    fn temporal_imprecision_of_shifted_family() {
        // Family of runs where p1's wake is shifted arbitrarily: every
        // one-tick shift of either processor has a witness. With no clocks
        // and no events, histories are wake-dependent only... here both
        // always awake from 0, so histories are constant and any run
        // witnesses any shift.
        let r0 = base("r0", 3).build();
        let r1 = base("r1", 3).build();
        let sys = System::new(vec![r0, r1]);
        assert_eq!(check_temporal_imprecision(&sys), None);
    }

    #[test]
    fn temporal_imprecision_fails_with_global_clock() {
        // Perfect shared clocks pin real time: a one-tick shift of p0
        // would need clock readings that don't exist in any run.
        let r0 = base("r0", 3)
            .perfect_clock(a(0), 0)
            .perfect_clock(a(1), 0)
            .build();
        let sys = System::new(vec![r0]);
        let v = check_temporal_imprecision(&sys);
        assert!(v.is_some(), "global clock kills temporal imprecision");
    }

    #[test]
    fn ng2_on_loss_closed_family() {
        // All four delivery outcomes of one message exist — NG2's witness
        // (suppress deliveries to others, keep p_i's view) is available.
        let quiet = base("quiet", 3).build();
        let lost = base("lost", 3).event(a(0), 1, send(1, 1)).build();
        let deliver = base("deliver", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 2, recv(0, 1))
            .build();
        let sys = System::new(vec![quiet, lost, deliver]);
        assert_eq!(check_ng2(&sys), None);
    }

    #[test]
    fn ng1_accepts_shorter_silent_witnesses() {
        // The witness run may be *shorter* than the run under test: the
        // agreement table must scan to the outer run's horizon (clockless
        // histories are well-defined past a run's horizon), exactly as
        // the unmemoised `extends` scan did.
        let long = base("long", 5)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 4, recv(0, 1))
            .build();
        let short = base("short", 3).event(a(0), 1, send(1, 1)).build();
        let sys = System::new(vec![long.clone(), short.clone()]);
        // Unmemoised reference: `short` extends (long, 4) and is silent.
        assert!(extends(&long, &short, 4) && short.silent_from(4));
        assert_eq!(check_ng1(&sys), None);
    }

    #[test]
    fn ng1_prime_with_delay_family() {
        // Message sent at 1 can be delivered at 2, 3, or never — delivery
        // delayable past any u, so NG1' holds on this truncation.
        let lost = base("lost", 3).event(a(0), 1, send(1, 1)).build();
        let d2 = base("d2", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 2, recv(0, 1))
            .build();
        let d3 = base("d3", 3)
            .event(a(0), 1, send(1, 1))
            .event(a(1), 3, recv(0, 1))
            .build();
        let quiet = base("quiet", 3).build();
        let sys = System::new(vec![quiet, lost, d2, d3]);
        assert_eq!(check_ng1_prime(&sys), None);
    }
}
