//! Interpreted systems: knowledge over a set of runs.
//!
//! An [`InterpretedSystem`] packages a view-based knowledge interpretation
//! `I = (R, π, v)` (Halpern–Moses Section 6): a [`System`] `R`, a truth
//! assignment `π` given by named *fact* predicates over points, and a
//! [`ViewFunction`] `v`. Internally it materialises the finite Kripke
//! model whose worlds are the points of `R` and whose agent partitions are
//! induced by `v`, and it implements both [`Frame`] (static operators) and
//! [`TemporalStructure`] (the `E^ε/E^◇/E^T` and run-temporal operators of
//! Sections 11–12) for the `hm-logic` model checker.

use crate::intern::ViewInterner;
use crate::run::Run;
use crate::system::{Point, RunId, System};
use crate::view::ViewFunction;
use hm_kripke::{
    coarsest_refinement_budgeted, quotient_partitions, AgentGroup, AgentId, KripkeModel, Minimized,
    ModelBuilder, Partition, WorldId, WorldSet,
};
use hm_limits::{failpoints, Budget, LimitExceeded, Phase};
use hm_logic::{evaluate, AtomTable, EvalError, Formula, Frame, TemporalStructure};

/// A fact predicate: the truth of a ground atom at each point of a run.
pub type FactFn = Box<dyn Fn(&Run, u64) -> bool>;

/// Builder for [`InterpretedSystem`] (C-BUILDER).
pub struct InterpretedSystemBuilder {
    system: System,
    view: Box<dyn ViewFunction>,
    facts: Vec<(String, FactFn)>,
    minimize: bool,
    budget: Budget,
}

impl InterpretedSystemBuilder {
    /// Declares a ground atom `name` true at the points where `fact`
    /// returns `true`.
    pub fn fact(
        mut self,
        name: impl Into<String>,
        fact: impl Fn(&Run, u64) -> bool + 'static,
    ) -> Self {
        self.facts.push((name.into(), Box::new(fact)));
        self
    }

    /// Folds bisimulation minimisation into construction: `build` will
    /// additionally compute the coarsest epistemic bisimulation quotient
    /// of the point model — by partition refinement directly over the
    /// dense per-agent view ids, before any formula is evaluated — and
    /// attach it as [`InterpretedSystem::quotient`]. Quotient worlds are
    /// labelled with their representative point's `run@t` name.
    ///
    /// The quotient answers every formula of the `D`-free static fragment
    /// identically to the full model (and is often much smaller); the
    /// temporal operators and `D_G` must still be evaluated on the full
    /// model, which remains available unchanged.
    pub fn minimized(mut self, on: bool) -> Self {
        self.minimize = on;
        self
    }

    /// Attaches a resource [`Budget`]: construction charges one visited
    /// state per point-sized unit of work (amortized), enforces the
    /// world ceiling against the point count up front, and re-checks
    /// deadlines/cancellation at minimisation rounds. Use
    /// [`try_build`](Self::try_build) to observe the resulting errors.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Materialises the interpreted system.
    ///
    /// # Panics
    ///
    /// Panics if a [`budget`](Self::budget) was attached and exceeded —
    /// governed callers should use [`try_build`](Self::try_build).
    pub fn build(self) -> InterpretedSystem {
        self.try_build()
            .unwrap_or_else(|e| panic!("interpreted-system build exceeded its budget: {e}"))
    }

    /// Materialises the interpreted system under the attached budget.
    ///
    /// # Errors
    ///
    /// [`LimitExceeded`] when the point count exceeds the world ceiling
    /// (checked before any allocation), the visited-state budget runs
    /// out, the deadline passes, or the budget's token is cancelled. The
    /// failpoint site `runs::build` can inject the same errors. On error
    /// all partially-built state is dropped.
    pub fn try_build(self) -> Result<InterpretedSystem, LimitExceeded> {
        failpoints::check("runs::build", Phase::Build)?;
        let budget = self.budget;
        let system = self.system;
        let num_points = system.num_points();
        let num_procs = system.num_procs();
        budget.check_worlds(Phase::Build, num_points as u64)?;

        // World layout: runs in order, times ascending.
        let mut offsets = Vec::with_capacity(system.num_runs());
        let mut acc = 0u32;
        for (_, r) in system.runs() {
            offsets.push(acc);
            acc += r.num_points() as u32;
        }

        let mut b = ModelBuilder::new(num_procs);
        // Worlds are unnamed: point names `run@t` are derived lazily from
        // `locate` when a diagnostic asks (see `point_name`), instead of
        // one `format!` per point here.
        b.add_worlds(num_points);
        // Per-fact truth bit-vectors: fed to the model builder, and — when
        // minimising — to the initial refinement partition.
        let mut fact_bits: Vec<Vec<bool>> = Vec::with_capacity(self.facts.len());
        for (name, fact) in &self.facts {
            let atom = b.atom(name.clone());
            let mut bits = Vec::with_capacity(num_points);
            let mut w = 0usize;
            for (_, r) in system.runs() {
                for t in 0..=r.horizon {
                    budget.tick(Phase::Build)?;
                    let v = fact(r, t);
                    if v {
                        b.set_atom(atom, WorldId::new(w), true);
                    }
                    bits.push(v);
                    w += 1;
                }
            }
            fact_bits.push(bits);
        }
        // Agent partitions from hash-consed view encodings: one scratch
        // buffer replayed through an interner per agent — no per-point
        // allocation — then a dense O(n) partition build from the ids.
        let mut scratch: Vec<u64> = Vec::new();
        let mut ids: Vec<u32> = Vec::with_capacity(num_points);
        let mut partitions: Vec<Partition> = Vec::with_capacity(num_procs);
        for i in 0..num_procs {
            let agent = AgentId::new(i);
            let mut interner = ViewInterner::new();
            ids.clear();
            for (_, r) in system.runs() {
                for t in 0..=r.horizon {
                    budget.tick(Phase::Build)?;
                    scratch.clear();
                    self.view.encode_view(r, agent, t, &mut scratch);
                    ids.push(interner.intern(&scratch));
                }
            }
            partitions.push(Partition::from_dense_keys(num_points, &ids, interner.len()));
        }
        let quotient = if self.minimize {
            Some(quotient_of(
                &system,
                &offsets,
                &partitions,
                &self.facts,
                &fact_bits,
                &budget,
            )?)
        } else {
            None
        };
        for (i, p) in partitions.into_iter().enumerate() {
            b.set_partition(AgentId::new(i), p);
        }
        let model = b.build();

        // Clock table for the timestamped operators.
        let mut clocks: Vec<Vec<Option<u64>>> = vec![Vec::with_capacity(num_points); num_procs];
        for (_, r) in system.runs() {
            for t in 0..=r.horizon {
                for (i, col) in clocks.iter_mut().enumerate() {
                    col.push(r.proc(AgentId::new(i)).clock_at(t));
                }
            }
        }

        Ok(InterpretedSystem {
            system,
            model,
            offsets,
            clocks,
            view_name: self.view.name(),
            quotient,
        })
    }
}

/// The on-the-fly bisimulation fold: computes the coarsest-bisimulation
/// quotient model of the point universe from the per-agent view-id
/// partitions and fact bit-vectors — i.e. *before* the full model is
/// materialised — taking quotient world names from representative points
/// (`run@t`, the `point_name` scheme; the interpreted worlds themselves
/// are unnamed).
fn quotient_of(
    system: &System,
    offsets: &[u32],
    partitions: &[Partition],
    facts: &[(String, FactFn)],
    fact_bits: &[Vec<bool>],
    budget: &Budget,
) -> Result<Minimized, LimitExceeded> {
    let n = system.num_points();
    // Initial partition: by fact valuation, one dense pair-refinement per
    // fact (meet with the fact's indicator partition).
    let mut init = Partition::trivial(n);
    let mut keys: Vec<u32> = Vec::with_capacity(n);
    for bits in fact_bits {
        keys.clear();
        keys.extend(bits.iter().map(|&v| v as u32));
        init = init.meet(&Partition::from_dense_keys(n, &keys, 2));
    }
    let relations: Vec<&Partition> = partitions.iter().collect();
    let classes = coarsest_refinement_budgeted(init, &relations, budget)?;
    let k = classes.num_blocks();
    // Representative (first point) per class and the point→class map.
    let mut class_of = vec![0u32; n];
    let mut rep: Vec<u32> = Vec::with_capacity(k);
    for b in 0..k {
        let mut members = classes.block_members(b);
        rep.push(members.next().expect("blocks are non-empty").index() as u32);
        for w in classes.block_members(b) {
            class_of[w.index()] = b as u32;
        }
    }
    let locate = |w: u32| -> (usize, u64) {
        let run = match offsets.binary_search(&w) {
            Ok(r) => r,
            Err(ins) => ins - 1,
        };
        (run, (w - offsets[run]) as u64)
    };
    let mut qb = ModelBuilder::new(system.num_procs());
    for &r in &rep {
        let (run, t) = locate(r);
        qb.add_world(format!("{}@{t}", system.run(RunId::from(run)).name));
    }
    for ((name, _), bits) in facts.iter().zip(fact_bits) {
        let atom = qb.atom(name.clone());
        for (b, &r) in rep.iter().enumerate() {
            if bits[r as usize] {
                qb.set_atom(atom, WorldId::new(b), true);
            }
        }
    }
    for (i, part) in quotient_partitions(&classes, &relations)
        .into_iter()
        .enumerate()
    {
        qb.set_partition(AgentId::new(i), part);
    }
    Ok(Minimized {
        model: qb.build(),
        class_of,
    })
}

/// A view-based knowledge interpretation over a finite system of runs.
///
/// # Examples
///
/// ```
/// use hm_runs::{System, RunBuilder, InterpretedSystem, CompleteHistory};
/// use hm_logic::{parse, evaluate};
/// use hm_kripke::AgentId;
///
/// let sent = RunBuilder::new("sent", 2, 1)
///     .wake(AgentId::new(0), 0, 1)
///     .wake(AgentId::new(1), 0, 0)
///     .build();
/// let quiet = RunBuilder::new("quiet", 2, 1)
///     .wake(AgentId::new(0), 0, 0)
///     .wake(AgentId::new(1), 0, 0)
///     .build();
/// let isys = InterpretedSystem::builder(System::new(vec![sent, quiet]), CompleteHistory)
///     .fact("one", |run, _t| run.proc(AgentId::new(0)).initial_state == 1)
///     .build();
/// let f = parse("K0 one")?;
/// // Agent 0 read its own initial state, so it knows `one` in run 0.
/// assert!(evaluate(&isys, &f)?.contains(isys.world(0.into(), 0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct InterpretedSystem {
    system: System,
    model: KripkeModel,
    offsets: Vec<u32>,
    /// `clocks[agent][world]`.
    clocks: Vec<Vec<Option<u64>>>,
    view_name: &'static str,
    /// The bisimulation quotient, when construction folded it in (see
    /// [`InterpretedSystemBuilder::minimized`]).
    quotient: Option<Minimized>,
}

impl InterpretedSystem {
    /// Starts building an interpretation of `system` under `view`.
    pub fn builder(system: System, view: impl ViewFunction + 'static) -> InterpretedSystemBuilder {
        InterpretedSystemBuilder {
            system,
            view: Box::new(view),
            facts: Vec::new(),
            minimize: false,
            budget: Budget::unlimited(),
        }
    }

    /// `true` when the underlying run set was truncated by a resource
    /// budget: classical verdicts on this frame are unsound in general —
    /// use three-valued evaluation
    /// ([`evaluate_interval`](hm_logic::evaluate_interval)) instead.
    pub fn is_partial(&self) -> bool {
        self.system.is_truncated()
    }

    /// The bisimulation quotient computed at build time, if
    /// [`minimized`](InterpretedSystemBuilder::minimized) was requested:
    /// a (usually much smaller) model answering every `D`-free static
    /// formula identically at `quotient.image(w)`, plus the point→class
    /// map. Temporal operators and `D_G` are not quotient-invariant —
    /// evaluate those on `self` directly.
    pub fn quotient(&self) -> Option<&Minimized> {
        self.quotient.as_ref()
    }

    /// The underlying system of runs.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The materialised Kripke model (worlds = points).
    pub fn model(&self) -> &KripkeModel {
        &self.model
    }

    /// Name of the view function used.
    pub fn view_name(&self) -> &'static str {
        self.view_name
    }

    /// The world id of point `(run, t)`.
    ///
    /// # Panics
    ///
    /// Panics if the point is outside the system.
    pub fn world(&self, run: RunId, t: u64) -> WorldId {
        assert!(
            t <= self.system.run(run).horizon,
            "time {t} beyond horizon of {run}"
        );
        WorldId::new(self.offsets[run.index()] as usize + t as usize)
    }

    /// Diagnostic name of a world: `run@t`, derived lazily from
    /// [`locate`](Self::locate). The underlying model's worlds are
    /// unnamed (construction never formats a name per point); use this
    /// instead of [`KripkeModel::world_label`] for interpreted systems.
    pub fn point_name(&self, w: WorldId) -> String {
        let p = self.locate(w);
        format!("{}@{}", self.system.run(p.run).name, p.time)
    }

    /// The point of a world id.
    pub fn locate(&self, w: WorldId) -> Point {
        let idx = w.index() as u32;
        // offsets is ascending; find the last offset ≤ idx.
        let run = match self.offsets.binary_search(&idx) {
            Ok(r) => r,
            Err(ins) => ins - 1,
        };
        Point::new(RunId::from(run), (idx - self.offsets[run]) as u64)
    }

    /// Evaluates a closed formula over this interpretation.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the model checker.
    pub fn eval(&self, f: &Formula) -> Result<WorldSet, EvalError> {
        evaluate(self, f)
    }

    /// `true` iff `f` holds at point `(run, t)`.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the model checker.
    pub fn holds(&self, f: &Formula, run: RunId, t: u64) -> Result<bool, EvalError> {
        Ok(self.eval(f)?.contains(self.world(run, t)))
    }

    /// `true` iff `f` holds at every point (validity in the system).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the model checker.
    pub fn valid(&self, f: &Formula) -> Result<bool, EvalError> {
        Ok(self.eval(f)?.is_full())
    }

    /// The set of points of one run.
    pub fn run_points(&self, run: RunId) -> WorldSet {
        let mut out = self.model.empty_set();
        for t in 0..=self.system.run(run).horizon {
            out.insert(self.world(run, t));
        }
        out
    }
}

impl std::fmt::Debug for InterpretedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterpretedSystem")
            .field("runs", &self.system.num_runs())
            .field("points", &self.model.num_worlds())
            .field("view", &self.view_name)
            .finish()
    }
}

impl Frame for InterpretedSystem {
    fn num_worlds(&self) -> usize {
        self.model.num_worlds()
    }

    fn num_agents(&self) -> usize {
        self.model.num_agents()
    }

    fn atom_set(&self, name: &str) -> Option<WorldSet> {
        self.model.atom_id(name).map(|a| self.model.atom_set(a))
    }

    fn knowledge_set(&self, i: AgentId, a: &WorldSet) -> WorldSet {
        self.model.knowledge(i, a)
    }

    fn distributed_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        self.model.distributed_knowledge(g, a)
    }

    fn common_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        self.model.common_knowledge(g, a)
    }

    fn temporal(&self) -> Option<&dyn TemporalStructure> {
        Some(self)
    }

    fn atom_table(&self) -> Option<&dyn AtomTable> {
        Some(self)
    }
}

impl AtomTable for InterpretedSystem {
    fn atom_index(&self, name: &str) -> Option<usize> {
        self.model.atom_id(name).map(|a| a.index())
    }

    fn atom_set_by_id(&self, id: usize) -> WorldSet {
        self.model.atom_set(id.into())
    }
}

impl TemporalStructure for InterpretedSystem {
    fn num_runs(&self) -> usize {
        self.system.num_runs()
    }

    fn run_of(&self, w: WorldId) -> usize {
        self.locate(w).run.index()
    }

    fn time_of(&self, w: WorldId) -> u64 {
        self.locate(w).time
    }

    fn point(&self, run: usize, t: u64) -> Option<WorldId> {
        let id = RunId::from(run);
        (t <= self.system.run(id).horizon).then(|| self.world(id, t))
    }

    fn run_len(&self, run: usize) -> u64 {
        self.system.run(RunId::from(run)).num_points()
    }

    fn clock(&self, i: AgentId, w: WorldId) -> Option<u64> {
        self.clocks[i.index()][w.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Message};
    use crate::run::RunBuilder;
    use crate::view::{CompleteHistory, SharedLambda};
    use hm_logic::parse;

    fn a(i: usize) -> AgentId {
        AgentId::new(i)
    }

    /// Two runs: in "sent", p0 sends to p1 at t=1, delivered at t=2.
    /// In "lost", the message is sent but never delivered.
    fn msg_system() -> System {
        let msg = Message::tagged(1);
        let sent = RunBuilder::new("sent", 2, 3)
            .wake(a(0), 0, 0)
            .wake(a(1), 0, 0)
            .event(a(0), 1, Event::Send { to: a(1), msg })
            .event(a(1), 2, Event::Recv { from: a(0), msg })
            .build();
        let lost = RunBuilder::new("lost", 2, 3)
            .wake(a(0), 0, 0)
            .wake(a(1), 0, 0)
            .event(a(0), 1, Event::Send { to: a(1), msg })
            .build();
        System::new(vec![sent, lost])
    }

    fn interp(sys: System) -> InterpretedSystem {
        InterpretedSystem::builder(sys, CompleteHistory)
            .fact("sent", |run, t| {
                run.proc(a(0))
                    .events_before(t + 1)
                    .any(|e| matches!(e.event, Event::Send { .. }))
            })
            .fact("delivered", |run, t| {
                run.proc(a(1))
                    .events_before(t + 1)
                    .any(|e| e.event.is_recv())
            })
            .build()
    }

    #[test]
    fn world_point_round_trip() {
        let isys = interp(msg_system());
        assert_eq!(isys.model().num_worlds(), 8);
        for p in isys.system().points().collect::<Vec<_>>() {
            let w = isys.world(p.run, p.time);
            assert_eq!(isys.locate(w), p);
        }
    }

    #[test]
    fn receiver_knows_sender_does_not_know_it_knows() {
        let isys = interp(msg_system());
        let sent_run = RunId(0);
        // The receive at t=2 enters p1's history at t=3 (histories exclude
        // events at the current tick, Section 5), so p1 knows `sent` at 3.
        assert!(!isys.holds(&parse("K1 sent").unwrap(), sent_run, 2).unwrap());
        assert!(isys.holds(&parse("K1 sent").unwrap(), sent_run, 3).unwrap());
        // p0 cannot tell delivery from loss: ¬K0 K1 sent at any time.
        let k0k1 = parse("K0 K1 sent").unwrap();
        for t in 0..=3 {
            assert!(!isys.holds(&k0k1, sent_run, t).unwrap(), "t={t}");
        }
        // And common knowledge of `sent` fails everywhere.
        let c = parse("C{0,1} sent").unwrap();
        assert!(isys.eval(&c).unwrap().is_empty());
    }

    #[test]
    fn temporal_operators_work_on_interpreted_systems() {
        let isys = interp(msg_system());
        // In the delivered run, at t=0: even(delivered) holds; in the lost
        // run it does not.
        let f = parse("even delivered").unwrap();
        assert!(isys.holds(&f, RunId(0), 0).unwrap());
        assert!(!isys.holds(&f, RunId(1), 0).unwrap());
        // E^◇: p1 eventually knows `sent` only in the delivered run; p0
        // knows it from the start in both.
        let eev = parse("Eev{0,1} sent").unwrap();
        assert!(isys.holds(&eev, RunId(0), 0).unwrap());
        assert!(!isys.holds(&eev, RunId(1), 0).unwrap());
    }

    #[test]
    fn shared_lambda_collapses_hierarchy() {
        let isys = InterpretedSystem::builder(msg_system(), SharedLambda)
            .fact("sent", |_, _| true) // valid fact
            .build();
        // Everything valid is common knowledge under Λ.
        assert!(isys.valid(&parse("C{0,1} sent").unwrap()).unwrap());
    }

    #[test]
    fn valid_and_holds() {
        let isys = interp(msg_system());
        assert!(isys.valid(&parse("sent -> sent").unwrap()).unwrap());
        assert!(!isys.valid(&parse("delivered").unwrap()).unwrap());
        assert_eq!(isys.run_points(RunId(1)).count(), 4);
        let dbg = format!("{isys:?}");
        assert!(dbg.contains("complete-history"));
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn world_out_of_range_panics() {
        let isys = interp(msg_system());
        isys.world(RunId(0), 9);
    }

    fn interp_minimized(sys: System) -> InterpretedSystem {
        InterpretedSystem::builder(sys, CompleteHistory)
            .fact("sent", |run, t| {
                run.proc(a(0))
                    .events_before(t + 1)
                    .any(|e| matches!(e.event, Event::Send { .. }))
            })
            .minimized(true)
            .build()
    }

    #[test]
    fn minimized_build_matches_post_hoc_minimisation() {
        let isys = interp_minimized(msg_system());
        let q = isys.quotient().expect("fold requested");
        // The fold must agree (up to world count and formula verdicts)
        // with minimising the materialised model after the fact.
        let post = hm_kripke::minimize(isys.model());
        assert_eq!(q.model.num_worlds(), post.model.num_worlds());
        assert!(q.model.num_worlds() < isys.model().num_worlds());
        // Verdict invariance on the D-free static fragment.
        for src in ["sent", "K0 sent", "K1 sent", "C{0,1} sent", "S{0,1} !sent"] {
            let f = parse(src).unwrap();
            let full = isys.eval(&f).unwrap();
            let quot = hm_logic::evaluate(&q.model, &f).unwrap();
            for w in 0..isys.model().num_worlds() {
                let w = WorldId::new(w);
                assert_eq!(full.contains(w), quot.contains(q.image(w)), "{src} at {w}");
            }
        }
    }

    #[test]
    fn quotient_worlds_carry_point_names() {
        let isys = interp_minimized(msg_system());
        let q = isys.quotient().unwrap();
        for w in 0..q.model.num_worlds() {
            let label = q.model.world_label(WorldId::new(w));
            assert!(label.contains('@'), "quotient label {label} is run@t");
        }
        // Unminimised builds carry no quotient.
        assert!(interp(msg_system()).quotient().is_none());
    }
}
