//! View functions: what a processor can distinguish.
//!
//! Section 6 of Halpern–Moses defines knowledge relative to a *view
//! function* `v` assigning each processor a view at each point, required to
//! be a function of the processor's history. This module provides the
//! spectrum discussed in the paper:
//!
//! - [`CompleteHistory`] — the finest view (the *complete-history
//!   interpretation*), under which processors never forget;
//! - [`SharedLambda`] — the coarsest (a single view `Λ`), under which the
//!   knowledge hierarchy collapses;
//! - [`ClockOnly`] — the processor sees only its clock;
//! - [`StateProjection`] — an arbitrary function of the history
//!   (e.g. a bounded "local state", which may forget).
//!
//! Views are canonical integer encodings *appended into a caller-supplied
//! scratch buffer*: two points get the same view iff their encodings are
//! equal. The hot path never materialises a `Vec` per point — the
//! interpreted-system builder replays one scratch buffer through a
//! [`ViewInterner`](crate::ViewInterner), which hash-conses each encoding
//! into a dense `u32` view id, and agent partitions are built directly
//! from those ids (see E16 for the view-spectrum tests over this scheme).

use crate::run::{ProcRecord, Run};
use hm_kripke::AgentId;

/// A view function: assigns a canonical key to each (processor, point).
///
/// Implementations must be functions of the processor's *history* — they
/// may not peek at real time or at other processors' records (this is the
/// paper's requirement that `h(p,r,t) = h(p,r',t')` implies
/// `v(p,r,t) = v(p,r',t')`). [`CompleteHistory`] is the finest admissible
/// view; coarser views must factor through it (spot-checked
/// by the E16 view-spectrum tests).
pub trait ViewFunction {
    /// Appends the canonical key of processor `i`'s view at `(run, t)`
    /// onto `out` (which may hold unrelated prefix data the implementation
    /// must not touch). Equal appended encodings mean indistinguishable
    /// points.
    fn encode_view(&self, run: &Run, i: AgentId, t: u64, out: &mut Vec<u64>);

    /// Convenience form of [`encode_view`](Self::encode_view) returning a
    /// fresh buffer; allocates, so tests and diagnostics only.
    fn view_key(&self, run: &Run, i: AgentId, t: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.encode_view(run, i, t, &mut out);
        out
    }

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Appends the paper's complete history `h(p_i, r, t)` onto `out`: initial
/// state, the *set* of clock values read up to and including `t` (tick
/// counts are not observable — a constant clock reveals nothing about
/// elapsed real time), and the sequence of events before `t`, each stamped
/// with the clock reading at its occurrence when clocks exist.
///
/// Appends nothing for an asleep processor (the empty history, shared by
/// all asleep points).
pub fn encode_complete_history(p: &ProcRecord, t: u64, out: &mut Vec<u64>) {
    let wake = match p.wake_time {
        Some(w) if t >= w => w,
        // Asleep: the empty history.
        _ => return,
    };
    out.push(1); // awake marker
    out.push(p.initial_state);
    // Clock value set, deduplicated (monotone, so dedup of the reading
    // sequence from wake to t), preceded by its length.
    match &p.clock {
        Some(c) => {
            let count_at = out.len();
            out.push(0); // length, patched below
            let mut last = None;
            for &v in &c[wake as usize..=t as usize] {
                if last != Some(v) {
                    out.push(v);
                    last = Some(v);
                }
            }
            out[count_at] = (out.len() - count_at - 1) as u64;
        }
        None => out.push(0),
    }
    // Events before t, clock-stamped, preceded by their count. Events are
    // sorted by time, so the prefix boundary is a binary search away.
    let prefix = p.events.partition_point(|e| e.time < t);
    out.push(prefix as u64);
    for e in &p.events[..prefix] {
        e.event.encode(out);
        out.push(p.clock_at(e.time).map_or(u64::MAX, |c| c));
    }
}

/// [`encode_complete_history`] into a fresh buffer; allocates, so tests
/// and the NG-condition checkers' reference paths only.
pub fn complete_history_key(p: &ProcRecord, t: u64) -> Vec<u64> {
    let mut out = Vec::new();
    encode_complete_history(p, t, &mut out);
    out
}

/// The complete-history interpretation (finest admissible view).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompleteHistory;

impl ViewFunction for CompleteHistory {
    fn encode_view(&self, run: &Run, i: AgentId, t: u64, out: &mut Vec<u64>) {
        encode_complete_history(run.proc(i), t, out);
    }

    fn name(&self) -> &'static str {
        "complete-history"
    }
}

/// The single-view interpretation `Λ` of Section 6: every processor has the
/// same view everywhere, so only system-valid facts are known — and they
/// are common knowledge (the hierarchy collapses).
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedLambda;

impl ViewFunction for SharedLambda {
    fn encode_view(&self, _run: &Run, _i: AgentId, _t: u64, _out: &mut Vec<u64>) {}

    fn name(&self) -> &'static str {
        "shared-lambda"
    }
}

/// A clock-only view: the processor sees nothing but its current clock
/// reading (and whether it is awake). With a global clock this makes "it
/// is 5 o'clock" common knowledge at 5 o'clock (Section 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockOnly;

impl ViewFunction for ClockOnly {
    fn encode_view(&self, run: &Run, i: AgentId, t: u64, out: &mut Vec<u64>) {
        let p = run.proc(i);
        if !p.awake_at(t) {
            return;
        }
        out.push(1);
        if let Some(c) = p.clock_at(t) {
            out.push(c);
        }
    }

    fn name(&self) -> &'static str {
        "clock-only"
    }
}

/// A view computed by an arbitrary state-projection function of the
/// history prefix — the "processor's local state" interpretations of
/// Section 6, which can *forget*.
///
/// The projection receives the processor record, the current time and the
/// scratch buffer to append its encoding onto, and must depend only on
/// the history (enforceable by test, not by type).
pub struct StateProjection<F> {
    name: &'static str,
    project: F,
}

impl<F> StateProjection<F>
where
    F: Fn(&ProcRecord, u64, &mut Vec<u64>),
{
    /// Creates a named projection view.
    pub fn new(name: &'static str, project: F) -> Self {
        StateProjection { name, project }
    }
}

impl<F> ViewFunction for StateProjection<F>
where
    F: Fn(&ProcRecord, u64, &mut Vec<u64>),
{
    fn encode_view(&self, run: &Run, i: AgentId, t: u64, out: &mut Vec<u64>) {
        (self.project)(run.proc(i), t, out);
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

impl<F> std::fmt::Debug for StateProjection<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StateProjection({})", self.name)
    }
}

/// The "last event only" projection: remembers the initial state, the most
/// recent event, and the clock reading — a deliberately forgetful local
/// state used by experiment E16.
pub fn last_event_view() -> StateProjection<impl Fn(&ProcRecord, u64, &mut Vec<u64>)> {
    StateProjection::new(
        "last-event",
        |p: &ProcRecord, t: u64, out: &mut Vec<u64>| {
            if !p.awake_at(t) {
                return;
            }
            out.push(1);
            out.push(p.initial_state);
            if let Some(c) = p.clock_at(t) {
                out.push(c);
            }
            if let Some(e) = p.events_before(t).last() {
                e.event.encode(out);
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Message};
    use crate::run::RunBuilder;

    fn a(i: usize) -> AgentId {
        AgentId::new(i)
    }

    fn two_event_run() -> Run {
        RunBuilder::new("r", 2, 4)
            .wake(a(0), 0, 7)
            .wake(a(1), 1, 8)
            .event(
                a(0),
                1,
                Event::Send {
                    to: a(1),
                    msg: Message::tagged(1),
                },
            )
            .event(
                a(0),
                3,
                Event::Send {
                    to: a(1),
                    msg: Message::tagged(2),
                },
            )
            .build()
    }

    #[test]
    fn complete_history_grows_with_events_not_time() {
        let r = two_event_run();
        let v = CompleteHistory;
        // No clock: points between events are indistinguishable.
        assert_eq!(v.view_key(&r, a(0), 2), v.view_key(&r, a(0), 3));
        // Crossing an event changes the view.
        assert_ne!(v.view_key(&r, a(0), 3), v.view_key(&r, a(0), 4));
        // Events at time t are excluded from the view at t.
        assert_eq!(v.view_key(&r, a(0), 0), v.view_key(&r, a(0), 1));
    }

    #[test]
    fn asleep_points_share_the_empty_view() {
        let r = two_event_run();
        let v = CompleteHistory;
        assert_eq!(v.view_key(&r, a(1), 0), Vec::<u64>::new());
        assert_ne!(v.view_key(&r, a(1), 1), Vec::<u64>::new());
    }

    #[test]
    fn clock_dedup_hides_tick_counts() {
        // Constant clock: views at t=0 and t=2 identical (no event).
        let r = RunBuilder::new("r", 1, 2)
            .wake(a(0), 0, 0)
            .clock_readings(a(0), vec![5, 5, 5])
            .build();
        let v = CompleteHistory;
        assert_eq!(v.view_key(&r, a(0), 0), v.view_key(&r, a(0), 2));
        // Advancing clock: views differ.
        let r2 = RunBuilder::new("r", 1, 2)
            .wake(a(0), 0, 0)
            .clock_readings(a(0), vec![5, 5, 6])
            .build();
        assert_ne!(v.view_key(&r2, a(0), 0), v.view_key(&r2, a(0), 2));
    }

    #[test]
    fn shared_lambda_is_constant() {
        let r = two_event_run();
        let v = SharedLambda;
        assert_eq!(v.view_key(&r, a(0), 0), v.view_key(&r, a(1), 4));
        assert_eq!(v.name(), "shared-lambda");
    }

    #[test]
    fn clock_only_sees_reading() {
        let r = RunBuilder::new("r", 1, 3)
            .wake(a(0), 0, 9)
            .clock_readings(a(0), vec![0, 1, 1, 2])
            .build();
        let v = ClockOnly;
        assert_eq!(v.view_key(&r, a(0), 1), v.view_key(&r, a(0), 2));
        assert_ne!(v.view_key(&r, a(0), 0), v.view_key(&r, a(0), 1));
    }

    #[test]
    fn last_event_view_forgets() {
        // After a second identical event, history distinguishes but the
        // last-event state does not distinguish "one send" from "two
        // sends of the same message".
        let r = RunBuilder::new("r", 2, 4)
            .wake(a(0), 0, 0)
            .event(
                a(0),
                1,
                Event::Send {
                    to: a(1),
                    msg: Message::tagged(1),
                },
            )
            .event(
                a(0),
                2,
                Event::Send {
                    to: a(1),
                    msg: Message::tagged(1),
                },
            )
            .build();
        let forgetful = last_event_view();
        let full = CompleteHistory;
        assert_eq!(
            forgetful.view_key(&r, a(0), 2),
            forgetful.view_key(&r, a(0), 3)
        );
        assert_ne!(full.view_key(&r, a(0), 2), full.view_key(&r, a(0), 3));
    }
}
