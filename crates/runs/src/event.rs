//! Messages and observable events.
//!
//! A processor's local history (Halpern–Moses Section 5) is its initial
//! state followed by the sequence of messages it has sent and received —
//! *not* the real times at which they happened, since real time is not
//! observable. Events therefore carry a real-time stamp for the benefit of
//! the run data structure, but view functions deliberately drop it (clock
//! readings, when clocks exist, are what histories record).

use hm_kripke::AgentId;
use std::fmt;

/// A message payload: a protocol-defined tag plus one word of data.
///
/// Keeping payloads as two integers makes histories cheap to intern;
/// protocols give tags meaning (and names, via their own `Display`
/// helpers).
///
/// # Examples
///
/// ```
/// use hm_runs::Message;
/// const ATTACK_AT_DAWN: u32 = 1;
/// let m = Message::new(ATTACK_AT_DAWN, 0);
/// assert_eq!(m.tag, ATTACK_AT_DAWN);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Message {
    /// Protocol-defined message kind.
    pub tag: u32,
    /// One word of protocol-defined payload.
    pub data: u64,
}

impl Message {
    /// Creates a message.
    pub fn new(tag: u32, data: u64) -> Self {
        Message { tag, data }
    }

    /// A message with only a tag.
    pub fn tagged(tag: u32) -> Self {
        Message { tag, data: 0 }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}:{}", self.tag, self.data)
    }
}

/// An event observable by a single processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// This processor sent `msg` to `to`.
    Send {
        /// Recipient.
        to: AgentId,
        /// Payload.
        msg: Message,
    },
    /// This processor received `msg` from `from`.
    Recv {
        /// Sender.
        from: AgentId,
        /// Payload.
        msg: Message,
    },
    /// A protocol-visible internal action (e.g. "attack", "decide v"),
    /// recorded in the history like a message.
    Act {
        /// Protocol-defined action code.
        action: u32,
        /// One word of action payload.
        data: u64,
    },
}

impl Event {
    /// Canonical integer encoding for history interning. Injective over
    /// the event space (discriminant, then fields).
    pub fn encode(&self, out: &mut Vec<u64>) {
        match *self {
            Event::Send { to, msg } => {
                out.push(0);
                out.push(to.index() as u64);
                out.push(msg.tag as u64);
                out.push(msg.data);
            }
            Event::Recv { from, msg } => {
                out.push(1);
                out.push(from.index() as u64);
                out.push(msg.tag as u64);
                out.push(msg.data);
            }
            Event::Act { action, data } => {
                out.push(2);
                out.push(action as u64);
                out.push(data);
            }
        }
    }

    /// `true` for receive events (used by the NG-condition checkers, which
    /// count deliveries).
    pub fn is_recv(&self) -> bool {
        matches!(self, Event::Recv { .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Send { to, msg } => write!(f, "send({msg} -> {to})"),
            Event::Recv { from, msg } => write!(f, "recv({msg} <- {from})"),
            Event::Act { action, data } => write!(f, "act({action}:{data})"),
        }
    }
}

/// An event stamped with the real time at which it occurred (for the run
/// record; views do not see this stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimedEvent {
    /// Real time of occurrence (`0 ≤ time ≤ horizon`).
    pub time: u64,
    /// The event.
    pub event: Event,
}

impl TimedEvent {
    /// Creates a stamped event.
    pub fn new(time: u64, event: Event) -> Self {
        TimedEvent { time, event }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_injective_across_variants() {
        let a = Event::Send {
            to: AgentId::new(1),
            msg: Message::new(2, 3),
        };
        let b = Event::Recv {
            from: AgentId::new(1),
            msg: Message::new(2, 3),
        };
        let c = Event::Act { action: 1, data: 2 };
        let mut ea = vec![];
        let mut eb = vec![];
        let mut ec = vec![];
        a.encode(&mut ea);
        b.encode(&mut eb);
        c.encode(&mut ec);
        assert_ne!(ea, eb);
        assert_ne!(eb, ec);
        assert_ne!(ea, ec);
    }

    #[test]
    fn recv_detection_and_display() {
        let r = Event::Recv {
            from: AgentId::new(0),
            msg: Message::tagged(7),
        };
        assert!(r.is_recv());
        assert!(!Event::Act { action: 0, data: 0 }.is_recv());
        assert_eq!(r.to_string(), "recv(m7:0 <- p0)");
        assert_eq!(Message::new(1, 2).to_string(), "m1:2");
    }
}
