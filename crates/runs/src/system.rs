//! Systems: sets of runs.
//!
//! "We identify a distributed system with such a set R of its possible
//! runs" (Halpern–Moses Section 5). A [`System`] is a finite, canonically
//! ordered collection of [`Run`]s over the same processors; its *points*
//! are pairs `(run, t)`.

use crate::run::Run;
use std::fmt;

/// Identifier of a run within a system (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RunId(pub u32);

impl RunId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for RunId {
    fn from(i: usize) -> Self {
        RunId(u32::try_from(i).expect("run index exceeds u32::MAX"))
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A point `(r, t)` of a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// The run.
    pub run: RunId,
    /// The time, `0 ≤ t ≤ horizon(run)`.
    pub time: u64,
}

impl Point {
    /// Creates a point.
    pub fn new(run: RunId, time: u64) -> Self {
        Point { run, time }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.run, self.time)
    }
}

/// A finite set of runs over a common processor set.
///
/// # Examples
///
/// ```
/// use hm_runs::{System, RunBuilder};
/// use hm_kripke::AgentId;
/// let r0 = RunBuilder::new("quiet", 2, 3)
///     .wake(AgentId::new(0), 0, 0)
///     .wake(AgentId::new(1), 0, 0)
///     .build();
/// let sys = System::new(vec![r0]);
/// assert_eq!(sys.num_points(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct System {
    runs: Vec<Run>,
    num_procs: usize,
    /// `true` when a resource budget truncated enumeration: the runs
    /// present are complete, but further runs of the real system are
    /// missing (see `hm-limits` and the partial-verdict machinery).
    truncated: bool,
}

impl System {
    /// Builds a system from runs.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty or the runs disagree on the number of
    /// processors.
    pub fn new(runs: Vec<Run>) -> Self {
        assert!(!runs.is_empty(), "a system needs at least one run");
        let num_procs = runs[0].num_procs();
        for r in &runs {
            assert_eq!(
                r.num_procs(),
                num_procs,
                "run `{}` has {} processors, expected {num_procs}",
                r.name,
                r.num_procs()
            );
        }
        System {
            runs,
            num_procs,
            truncated: false,
        }
    }

    /// Flags this system as a budget-truncated sample of a larger one.
    /// Each present run is still complete (enumeration drops whole runs,
    /// never prefixes), which is what keeps run-local temporal operators
    /// exact under three-valued evaluation.
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }

    /// `true` when the run set was truncated by a resource budget.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Total number of points across runs.
    pub fn num_points(&self) -> usize {
        self.runs.iter().map(|r| r.num_points() as usize).sum()
    }

    /// The run with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn run(&self, id: RunId) -> &Run {
        &self.runs[id.index()]
    }

    /// Looks up a run by name (linear scan).
    pub fn run_by_name(&self, name: &str) -> Option<RunId> {
        self.runs
            .iter()
            .position(|r| r.name == name)
            .map(RunId::from)
    }

    /// Iterates over `(id, run)` pairs.
    pub fn runs(&self) -> impl Iterator<Item = (RunId, &Run)> {
        self.runs
            .iter()
            .enumerate()
            .map(|(i, r)| (RunId::from(i), r))
    }

    /// Iterates over all points in canonical order (runs in order, times
    /// ascending).
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.runs()
            .flat_map(|(id, r)| (0..=r.horizon).map(move |t| Point::new(id, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunBuilder;
    use hm_kripke::AgentId;

    fn quiet(name: &str, procs: usize, horizon: u64) -> Run {
        let mut b = RunBuilder::new(name, procs, horizon);
        for i in 0..procs {
            b = b.wake(AgentId::new(i), 0, 0);
        }
        b.build()
    }

    #[test]
    fn accessors() {
        let sys = System::new(vec![quiet("a", 2, 2), quiet("b", 2, 4)]);
        assert_eq!(sys.num_runs(), 2);
        assert_eq!(sys.num_procs(), 2);
        assert_eq!(sys.num_points(), 3 + 5);
        assert_eq!(sys.run_by_name("b"), Some(RunId(1)));
        assert_eq!(sys.run_by_name("zz"), None);
        assert_eq!(sys.points().count(), 8);
        assert_eq!(format!("{}", Point::new(RunId(1), 3)), "(r1,3)");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_system_panics() {
        System::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "processors")]
    fn mismatched_procs_panics() {
        System::new(vec![quiet("a", 2, 2), quiet("b", 3, 2)]);
    }
}
