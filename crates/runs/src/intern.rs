//! Hash-consing of view-key encodings into dense `u32` view ids.
//!
//! Building an interpreted system needs, per agent, a partition of all
//! points by view. Materialising one `Vec<u64>` key per point and hashing
//! it into a map dominates construction time; a [`ViewInterner`] instead
//! stores every distinct encoding once in a flat arena and resolves each
//! point's scratch-buffer encoding to a dense id with a single open-address
//! probe. Ids are handed out in first-intern order, so they double as
//! canonical partition labels (see `Partition::from_dense_keys`).

/// A hash-consing table mapping `&[u64]` view encodings to dense `u32` ids.
///
/// All distinct keys live concatenated in one arena; per-point work does no
/// heap allocation beyond the arena's amortised growth.
///
/// # Examples
///
/// ```
/// use hm_runs::ViewInterner;
/// let mut interner = ViewInterner::new();
/// let a = interner.intern(&[1, 2, 3]);
/// let b = interner.intern(&[9]);
/// assert_eq!(interner.intern(&[1, 2, 3]), a);
/// assert_ne!(a, b);
/// assert_eq!(interner.get(a), &[1, 2, 3]);
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ViewInterner {
    /// Concatenated key payloads.
    data: Vec<u64>,
    /// `(start, len)` of each interned key within `data`, indexed by id.
    spans: Vec<(u32, u32)>,
    /// Open-addressing slots holding ids; `u32::MAX` marks empty.
    table: Vec<u32>,
}

const EMPTY: u32 = u32::MAX;

/// Multiplicative word mixer (splitmix64's finalizer constants); the whole
/// key is folded in, so equal slices hash equal and order matters.
fn hash_key(key: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (key.len() as u64);
    for &w in key {
        h = (h ^ w).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h
}

impl ViewInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ViewInterner {
            data: Vec::new(),
            spans: Vec::new(),
            table: vec![EMPTY; 16],
        }
    }

    /// Number of distinct keys interned so far (ids are `0..len()`).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The key interned under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn get(&self, id: u32) -> &[u64] {
        let (start, len) = self.spans[id as usize];
        &self.data[start as usize..(start + len) as usize]
    }

    /// Resolves `key` to its dense id, interning it on first sight.
    /// Ids are issued in first-intern order: `0, 1, 2, …`.
    pub fn intern(&mut self, key: &[u64]) -> u32 {
        if self.spans.len() * 8 >= self.table.len() * 7 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = hash_key(key) as usize & mask;
        loop {
            let id = self.table[slot];
            if id == EMPTY {
                let new_id = u32::try_from(self.spans.len()).expect("too many distinct views");
                let start = u32::try_from(self.data.len()).expect("view arena exceeds u32 range");
                self.data.extend_from_slice(key);
                self.spans.push((start, key.len() as u32));
                self.table[slot] = new_id;
                return new_id;
            }
            if self.get(id) == key {
                return id;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the table and reinserts every id.
    fn grow(&mut self) {
        let new_cap = self.table.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![EMPTY; new_cap];
        for id in 0..self.spans.len() as u32 {
            let mut slot = hash_key(self.get(id)) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id;
        }
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_by_value_in_first_seen_order() {
        let mut i = ViewInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern(&[]), 0, "empty key is a valid view (asleep)");
        assert_eq!(i.intern(&[1, 2]), 1);
        assert_eq!(i.intern(&[2, 1]), 2, "order matters");
        assert_eq!(i.intern(&[1, 2]), 1);
        assert_eq!(i.intern(&[]), 0);
        assert_eq!(i.len(), 3);
        assert_eq!(i.get(2), &[2, 1]);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut i = ViewInterner::new();
        let ids: Vec<u32> = (0..1000u64).map(|k| i.intern(&[k, k ^ 7])).collect();
        assert_eq!(i.len(), 1000);
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(id, k as u32);
            assert_eq!(i.get(id), &[k as u64, k as u64 ^ 7]);
        }
        // Re-interning returns the same ids.
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(i.intern(&[k as u64, k as u64 ^ 7]), id);
        }
    }

    #[test]
    fn length_is_part_of_the_key() {
        let mut i = ViewInterner::new();
        let a = i.intern(&[0]);
        let b = i.intern(&[0, 0]);
        let c = i.intern(&[0, 0, 0]);
        assert_eq!(i.len(), 3);
        assert!(a != b && b != c && a != c);
    }
}
