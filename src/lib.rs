//! Facade crate for the Halpern–Moses reproduction.
//!
//! Re-exports the workspace crates under stable names. See the README for
//! an overview, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md`
//! for the paper-vs-measured record.
//!
//! - [`kripke`]: finite S5 Kripke models (worlds, partitions, bitsets,
//!   public announcements).
//! - [`logic`]: the epistemic µ-calculus (formulas, parser, fixed-point
//!   model checker, axiom checkers).
//! - [`runs`]: the runs-and-systems model of Section 5 and view-based
//!   interpretations of Section 6.
//! - [`netsim`]: deterministic protocol simulator with exhaustive
//!   adversarial run enumeration.
//! - [`core`]: the paper's results as executable analyses — the knowledge
//!   hierarchy, attainability theorems, common-knowledge variants,
//!   puzzles and agreement protocols.
//! - [`engine`]: the compiled query engine — a builder-style pipeline
//!   (`Engine::for_scenario(..).build()` → `Session`) that constructs any
//!   worked example by name, compiles formulas once, and answers queries.
//! - [`limits`]: resource governance — run/world/state budgets,
//!   deadlines and cooperative cancellation for every expensive phase,
//!   with typed `LimitExceeded` errors and optional graceful
//!   degradation to truncated frames.
//! - [`serve`]: the query service — a std-only HTTP server (`hm serve`)
//!   answering JSON queries from a pool of worker threads, with an LRU
//!   cache of built engines and a shared compiled-formula store.
//!
//! # Quick start
//!
//! ```
//! use halpern_moses::core::puzzles::muddy::MuddyChildren;
//!
//! // Three children, two muddy: nobody can answer until round 2.
//! let puzzle = MuddyChildren::new(3);
//! let trace = puzzle.run_with_announcement(0b011);
//! assert_eq!(trace.first_yes_round(), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hm_core as core;
pub use hm_engine as engine;
pub use hm_kripke as kripke;
pub use hm_limits as limits;
pub use hm_logic as logic;
pub use hm_netsim as netsim;
pub use hm_runs as runs;
pub use hm_serve as serve;
