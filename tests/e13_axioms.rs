//! Experiment E13: the logic of knowledge (paper Section 6).
//!
//! Property-based verification over random S5 models of:
//! - Proposition 1: `K_i`, `D_G`, `C_G` have the S5 properties;
//! - the fixed-point axiom C1 and induction rule C2 for `C_G`;
//! - Lemma 2's tri-equivalence;
//! - Lemma 3 (via Lemma 2): points sharing a member's history agree on
//!   `C_G φ`.

use halpern_moses::kripke::{random_model, AgentGroup, AgentId, RandomModelSpec};
use halpern_moses::logic::axioms::{
    check_fixed_point_axiom, check_induction_rule, check_lemma2, check_s5, sample_sets, ModalOp,
};
use halpern_moses::logic::Frame;
use proptest::prelude::*;

fn spec_from(seed: u64) -> RandomModelSpec {
    RandomModelSpec {
        num_agents: 2 + (seed % 3) as usize,
        num_worlds: 3 + (seed % 29) as usize,
        num_atoms: 2,
        max_blocks: 1 + (seed % 6) as usize,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proposition1_s5_for_k_d_c(seed in 0u64..100_000) {
        let m = random_model(seed, spec_from(seed));
        let suite = sample_sets(&m, &["q0", "q1"], 5, seed ^ 0x5EED);
        let g = AgentGroup::all(m.num_agents());
        for op in [
            ModalOp::Knows(AgentId::new(0)),
            ModalOp::Knows(AgentId::new(m.num_agents() - 1)),
            ModalOp::Distributed(g.clone()),
            ModalOp::Common(g),
        ] {
            let rep = check_s5(&m, &op, &suite);
            prop_assert!(rep.is_s5(), "{op:?}: {rep:?}");
        }
        // Subgroup common knowledge is S5 too.
        if m.num_agents() > 2 {
            let sub = AgentGroup::new([AgentId::new(0), AgentId::new(1)]);
            let rep = check_s5(&m, &ModalOp::Common(sub), &suite);
            prop_assert!(rep.is_s5());
        }
    }

    #[test]
    fn c1_c2_lemma2(seed in 0u64..100_000) {
        let m = random_model(seed, spec_from(seed.rotate_left(13)));
        let suite = sample_sets(&m, &["q0", "q1"], 6, seed ^ 0xF00D);
        let g = AgentGroup::all(m.num_agents());
        let c = ModalOp::Common(g.clone());
        prop_assert_eq!(check_fixed_point_axiom(&m, &c, &suite), None);
        prop_assert_eq!(check_induction_rule(&m, &c, &suite), None);
        prop_assert_eq!(check_lemma2(&m, &g, &suite), None);
    }

    #[test]
    fn lemma3_ck_constant_on_member_classes(seed in 0u64..100_000) {
        // If a member of G cannot distinguish two worlds, C_G φ agrees on
        // them (Lemma 3).
        let m = random_model(seed, spec_from(seed.rotate_left(29)));
        let g = AgentGroup::all(m.num_agents());
        let fact = Frame::atom_set(&m, "q0").unwrap();
        let ck = m.common_knowledge(&g, &fact);
        for i in g.iter() {
            let part = m.partition(i);
            for block in part.blocks() {
                let vals: Vec<bool> = block
                    .iter()
                    .map(|&w| ck.contains(hm_kripke::WorldId::new(w as usize)))
                    .collect();
                prop_assert!(
                    vals.windows(2).all(|p| p[0] == p[1]),
                    "agent {i} block disagrees on C"
                );
            }
        }
    }

    #[test]
    fn ck_two_characterisations_agree(seed in 0u64..100_000) {
        let m = random_model(seed, spec_from(seed.rotate_left(47)));
        let g = AgentGroup::all(m.num_agents());
        let fact = Frame::atom_set(&m, "q1").unwrap();
        prop_assert_eq!(
            m.common_knowledge(&g, &fact),
            m.common_knowledge_gfp(&g, &fact)
        );
    }

    #[test]
    fn knowledge_monotone_in_view_refinement(seed in 0u64..100_000) {
        // An agent with a finer partition knows at least as much: the
        // complete-history interpretation is the informative extreme
        // (Section 6).
        let m = random_model(seed, spec_from(seed.rotate_left(55)));
        let fact = Frame::atom_set(&m, "q0").unwrap();
        let coarse = m.partition(AgentId::new(0));
        let fine = coarse.meet(m.partition(AgentId::new(1 % m.num_agents())));
        prop_assert!(coarse.knowledge(&fact).is_subset(&fine.knowledge(&fact)));
    }
}

#[test]
fn simultaneity_corollary_of_lemma2() {
    // When C_G φ flips between consecutive points of a run, every member
    // of G's history must change (the paper's discussion after Lemma 2).
    use halpern_moses::core::attain::uncertain_start_interpreted;
    use halpern_moses::logic::Formula;
    use halpern_moses::runs::conditions::histories_equal;

    let isys = uncertain_start_interpreted(8, true).unwrap();
    let g = AgentGroup::all(2);
    let ck = isys
        .eval(&Formula::common(g.clone(), Formula::atom("five_oclock")))
        .unwrap();
    for (rid, run) in isys.system().runs() {
        for t in 1..=run.horizon {
            let before = ck.contains(isys.world(rid, t - 1));
            let after = ck.contains(isys.world(rid, t));
            if before != after {
                for i in g.iter() {
                    assert!(
                        !histories_equal(run, run, i, t - 1) || {
                            // compare the two times within the same run
                            use halpern_moses::runs::complete_history_key;
                            complete_history_key(run.proc(i), t - 1)
                                != complete_history_key(run.proc(i), t)
                        },
                        "{rid} t={t}: CK flipped but {i}'s history did not change"
                    );
                }
            }
        }
    }
}
