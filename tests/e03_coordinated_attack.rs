//! Experiments E3–E5: coordinated attack and the unattainability of
//! common knowledge (paper Sections 4, 7, 8).
//!
//! E3: each delivered message adds exactly one level of interleaved
//!     knowledge; Proposition 4 (attack ⊃ common knowledge of attack).
//! E4: Theorem 5 — with communication not guaranteed (NG1+NG2 verified),
//!     common knowledge is twin-invariant, hence coordinated attack is
//!     impossible (Corollary 6, corroborated by a protocol-family sweep).
//! E5: Theorem 7 — likewise under guaranteed-but-unbounded delivery
//!     (NG1′+NG2 verified).

use halpern_moses::core::attain::{check_ck_twin_invariance, check_proposition13, ck_set};
use halpern_moses::core::puzzles::attack::{
    classify_attack_rule, generals_attack_interpreted, generals_interpreted, ladder_depth_at_end,
    proposition4_check, AttackRuleOutcome,
};
use halpern_moses::kripke::{AgentGroup, AgentId};
use halpern_moses::logic::Formula;
use halpern_moses::netsim::{
    enumerate_runs, Command, ExecutionSpec, FnProtocol, LocalView, UnboundedDelay,
};
use halpern_moses::runs::conditions;
use halpern_moses::runs::{CompleteHistory, InterpretedSystem, Message, System};

fn g2() -> AgentGroup {
    AgentGroup::all(2)
}

#[test]
fn e3_ladder_depth_equals_delivery_count() {
    let isys = generals_interpreted(10).unwrap();
    for d in 0..=5usize {
        assert_eq!(ladder_depth_at_end(&isys, d, 9), d, "d={d}");
    }
}

#[test]
fn e3_proposition4_on_a_correct_by_fiat_protocol() {
    // A protocol that never attacks is (vacuously) correct; ψ ⊃ Eψ and
    // ψ ⊃ Cψ must be valid (they are, vacuously).
    let isys = generals_attack_interpreted(6, 9, 9).unwrap();
    let (e, c) = proposition4_check(&isys);
    assert!(e && c);
}

#[test]
fn e3_proposition4_detects_unsafe_protocols() {
    // For an unsafe rule (thresholds 1,1) ψ = "both attacking" is NOT
    // E-closed: there are runs where one knows of its own attack but the
    // other never attacks... ψ ⊃ Eψ may still hold or fail; what must
    // hold for CORRECT protocols is checked above. Here we simply verify
    // that the unsafe rule is flagged by the sweep instead.
    let out = classify_attack_rule(6, 1, 1).unwrap();
    assert!(matches!(out, AttackRuleOutcome::Unsafe(_)));
}

#[test]
fn e4_theorem5_with_verified_hypothesis() {
    for horizon in [4u64, 6, 8] {
        let isys = generals_interpreted(horizon).unwrap();
        assert_eq!(conditions::check_ng1(isys.system()), None, "h={horizon}");
        assert_eq!(conditions::check_ng2(isys.system()), None, "h={horizon}");
        let fact = Formula::atom("dispatched");
        assert!(
            check_ck_twin_invariance(&isys, &g2(), &fact)
                .unwrap()
                .is_empty(),
            "h={horizon}"
        );
        assert!(ck_set(&isys, &g2(), &fact).unwrap().is_empty());
        assert!(
            check_proposition13(&isys, &g2(), &fact).unwrap().is_empty(),
            "h={horizon}"
        );
    }
}

#[test]
fn e4_corollary6_sweep() {
    for ta in 0..=3usize {
        for tb in 0..=3usize {
            let out = classify_attack_rule(8, ta, tb).unwrap();
            assert!(
                !matches!(out, AttackRuleOutcome::CoordinatedAttack),
                "({ta},{tb}) coordinated — contradicts Corollary 6"
            );
        }
    }
}

fn unbounded_oneshot(horizon: u64) -> InterpretedSystem {
    let protocol = FnProtocol::new("oneshot", |v: &LocalView<'_>| {
        if v.me.index() == 0 && v.initial_state == 1 && v.sent().count() == 0 {
            vec![Command::Send {
                to: AgentId::new(1),
                msg: Message::tagged(1),
            }]
        } else {
            Vec::new()
        }
    });
    let mut runs = Vec::new();
    for intent in 0..=1u64 {
        runs.extend(
            enumerate_runs(
                &protocol,
                &UnboundedDelay { min_delay: 1 },
                &ExecutionSpec::simple(2, horizon)
                    .with_initial_states(vec![intent, 0])
                    .with_label(format!("i{intent}")),
                1024,
            )
            .unwrap(),
        );
    }
    InterpretedSystem::builder(System::new(runs), CompleteHistory)
        .fact("sent", |run, t| {
            run.proc(AgentId::new(0))
                .events_before(t + 1)
                .any(|e| matches!(e.event, halpern_moses::runs::Event::Send { .. }))
        })
        .build()
}

#[test]
fn e5_theorem7_under_unbounded_delivery() {
    let isys = unbounded_oneshot(7);
    // Hypothesis: unbounded delivery (NG1' + NG2).
    assert_eq!(conditions::check_ng1_prime(isys.system()), None);
    assert_eq!(conditions::check_ng2(isys.system()), None);
    // Conclusion: twin invariance, hence no CK of `sent`.
    let fact = Formula::atom("sent");
    assert!(check_ck_twin_invariance(&isys, &g2(), &fact)
        .unwrap()
        .is_empty());
    assert!(ck_set(&isys, &g2(), &fact).unwrap().is_empty());
}

#[test]
fn e3_ek_attainable_but_never_c() {
    // "The generals can attain E^k φ of many facts for arbitrarily large
    // k … but for no k does E^k suffice" — E^k(dispatched) holds at the
    // end of runs with enough deliveries, while C never does.
    let isys = generals_interpreted(10).unwrap();
    let fact = Formula::atom("dispatched");
    let e2 = isys
        .eval(&Formula::everyone_k(g2(), 2, fact.clone()))
        .unwrap();
    assert!(!e2.is_empty(), "E² dispatched is attainable");
    assert!(ck_set(&isys, &g2(), &fact).unwrap().is_empty());
}
