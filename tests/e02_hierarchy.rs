//! Experiment E2: the hierarchy of states of group knowledge (Section 3).
//!
//! Paper claims:
//! 1. `Cφ ⊃ … ⊃ E^{k+1}φ ⊃ E^kφ ⊃ … ⊃ Eφ ⊃ Sφ ⊃ Dφ ⊃ φ` is valid in
//!    every system.
//! 2. In a message-passing system the hierarchy is strict — every two
//!    adjacent levels are separated by some situation.
//! 3. With a common memory (one shared view) the knowledge levels
//!    collapse: `Cφ ≡ E^kφ ≡ Eφ ≡ Sφ ≡ Dφ`.

use halpern_moses::core::hierarchy::{hierarchy, Level};
use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::kripke::{
    random_model, AgentGroup, AgentId, ModelBuilder, Partition, RandomModelSpec,
};
use halpern_moses::logic::Frame;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn inclusions_valid_on_arbitrary_models(seed in 0u64..10_000) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 2 + (seed % 3) as usize,
            num_worlds: 4 + (seed % 24) as usize,
            num_atoms: 1,
            max_blocks: 5,
        });
        let g = AgentGroup::all(m.num_agents());
        let fact = Frame::atom_set(&m, "q0").unwrap();
        let h = hierarchy(&m, &g, &fact, 4);
        prop_assert!(h.inclusions_hold());
    }
}

#[test]
fn every_adjacent_pair_separated_by_some_situation() {
    // φ vs D: a hidden coin (nobody's view includes it).
    // D vs S: the split secret (x vs y).
    // S vs E and E^k vs E^{k+1} and E^k vs C: the muddy children.
    // Each separation is realised by an explicit witness world.

    // hidden coin
    let mut b = ModelBuilder::new(2);
    for w in 0..4u64 {
        b.add_world(format!("{w:02b}"));
    }
    let coin = b.atom("coin");
    b.set_atom(coin, 2.into(), true);
    b.set_atom(coin, 3.into(), true);
    // Both agents see only bit 0, not the coin bit.
    for i in 0..2 {
        b.set_partition_by_key(AgentId::new(i), |w| w.index() & 1);
    }
    let m = b.build();
    let g = AgentGroup::all(2);
    let h = hierarchy(&m, &g, &Frame::atom_set(&m, "coin").unwrap(), 1);
    assert!(h.strictness_witnesses()[0].is_some(), "φ above D");

    // split secret: agent 0 sees x, agent 1 sees y; fact x == y.
    let mut b = ModelBuilder::new(2);
    for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        b.add_world(format!("x{x}y{y}"));
    }
    let eq = b.atom("eq");
    b.set_atom(eq, 0.into(), true);
    b.set_atom(eq, 3.into(), true);
    b.set_partition_by_key(AgentId::new(0), |w| w.index() / 2);
    b.set_partition_by_key(AgentId::new(1), |w| w.index() % 2);
    let m = b.build();
    let h = hierarchy(&m, &g, &Frame::atom_set(&m, "eq").unwrap(), 1);
    assert!(h.strictness_witnesses()[1].is_some(), "D above S");

    // muddy children: S/E/E^k/C separations.
    let p = MuddyChildren::new(6);
    let h = hierarchy(p.model(), &p.group(), &p.m_set(), 5);
    let w = h.strictness_witnesses();
    // Levels: φ, D, S, E, E^2..E^5, C → pairs: (φ,D),(D,S),(S,E),(E,E^2)…
    for (i, witness) in w.iter().enumerate().skip(2) {
        assert!(witness.is_some(), "level pair {i} not separated");
    }
}

#[test]
fn common_memory_collapses_knowledge_levels() {
    for blocks in 1..=4usize {
        let n_worlds = 12;
        let mut b = ModelBuilder::new(3);
        for w in 0..n_worlds {
            b.add_world(format!("w{w}"));
        }
        let q = b.atom("q");
        for w in (0..n_worlds).step_by(2) {
            b.set_atom(q, w.into(), true);
        }
        let shared = Partition::from_key(n_worlds, |w| w.index() % blocks);
        for i in 0..3 {
            b.set_partition(AgentId::new(i), shared.clone());
        }
        let m = b.build();
        let g = AgentGroup::all(3);
        let h = hierarchy(&m, &g, &Frame::atom_set(&m, "q").unwrap(), 4);
        assert!(h.knowledge_levels_collapsed(), "blocks={blocks}");
    }
}

#[test]
fn level_names_render() {
    let names: Vec<String> = [
        Level::Fact,
        Level::Distributed,
        Level::Someone,
        Level::EveryoneK(1),
        Level::EveryoneK(2),
        Level::Common,
    ]
    .iter()
    .map(|l| l.to_string())
    .collect();
    assert_eq!(names, vec!["phi", "D", "S", "E", "E^2", "C"]);
}
