//! Bisimulation minimisation applied to interpreted run systems: the
//! quotient gives the same answers for the D-free language at a fraction
//! of the size (extension X3, DESIGN.md).

use halpern_moses::core::puzzles::attack::generals_interpreted;
use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::kripke::{minimize, AgentGroup, AgentId};
use halpern_moses::logic::{evaluate, Formula};

#[test]
fn generals_points_compress_and_answers_agree() {
    let isys = generals_interpreted(8).unwrap();
    let model = isys.model();
    let min = minimize(model);
    assert!(
        min.model.num_worlds() < model.num_worlds(),
        "quiet stretches of the runs should collapse ({} vs {})",
        min.model.num_worlds(),
        model.num_worlds()
    );
    let g = AgentGroup::all(2);
    for f in [
        Formula::atom("dispatched"),
        Formula::knows(AgentId::new(1), Formula::atom("dispatched")),
        Formula::knows(
            AgentId::new(0),
            Formula::knows(AgentId::new(1), Formula::atom("dispatched")),
        ),
        Formula::everyone_k(g.clone(), 2, Formula::atom("dispatched")),
        Formula::common(g, Formula::atom("dispatched")),
    ] {
        let on_full = evaluate(model, &f).unwrap();
        let on_min = evaluate(&min.model, &f).unwrap();
        for w in model.worlds() {
            assert_eq!(
                on_full.contains(w),
                on_min.contains(min.image(w)),
                "{f} differs at {}",
                model.world_label(w)
            );
        }
    }
}

#[test]
fn muddy_children_model_is_already_minimal() {
    // Every world of the muddy model is epistemically distinct (each
    // muddiness vector has a unique atom valuation), so minimisation is
    // the identity in size.
    let p = MuddyChildren::new(5);
    let min = minimize(p.model());
    assert_eq!(min.model.num_worlds(), p.model().num_worlds());
}

#[test]
fn compression_ratio_reported() {
    // Not a claim from the paper — a sanity bound to catch regressions
    // in view interning: the generals' 54-point system should compress
    // by at least a third (quiet ticks dominate).
    let isys = generals_interpreted(8).unwrap();
    let before = isys.model().num_worlds();
    let after = minimize(isys.model()).model.num_worlds();
    assert!(
        after * 3 <= before * 2,
        "expected >= 1/3 compression: {before} -> {after}"
    );
}
