//! Experiments E6–E7: the R2–D2 ε-ladder and temporal imprecision
//! (paper Section 8, Appendix B).

use halpern_moses::core::attain::{
    check_ck_run_constant, ck_set, initial_point_reachable_everywhere, uncertain_start_interpreted,
};
use halpern_moses::core::puzzles::r2d2::{
    ck_sent, first_time, ladder_onsets, r2d2_interpreted, rd_ladder,
};
use halpern_moses::kripke::AgentGroup;
use halpern_moses::logic::Formula;
use halpern_moses::netsim::scenarios::R2d2Mode;
use halpern_moses::runs::conditions;

fn g2() -> AgentGroup {
    AgentGroup::all(2)
}

#[test]
fn e6_ladder_increments_are_exactly_eps() {
    for eps in [1u64, 2, 4] {
        let analysis = r2d2_interpreted(eps, 5, 5, R2d2Mode::Uncertain);
        let onsets = ladder_onsets(&analysis.isys, &analysis.meta, 4).unwrap();
        for k in 2..=4usize {
            let prev = onsets[k - 1].unwrap();
            let cur = onsets[k].unwrap();
            assert_eq!(cur - prev, eps, "eps={eps} k={k}");
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // k is the ladder level, not an index
fn e6_ladder_not_earlier() {
    // (K_R K_D)^k sent must FAIL at every time before its onset.
    let analysis = r2d2_interpreted(2, 4, 4, R2d2Mode::Uncertain);
    let onsets = ladder_onsets(&analysis.isys, &analysis.meta, 3).unwrap();
    for k in 1..=3usize {
        let f = rd_ladder(k, Formula::atom("sent"));
        let set = analysis.isys.eval(&f).unwrap();
        let onset = onsets[k].unwrap();
        for t in 0..onset {
            assert!(
                !set.contains(analysis.isys.world(analysis.meta.focus_slow, t)),
                "k={k} t={t}"
            );
        }
    }
}

#[test]
fn e6_ck_unattainable_in_window_for_all_eps() {
    for eps in [1u64, 3] {
        let (pre, post) = (4usize, 4usize);
        let analysis = r2d2_interpreted(eps, pre, post, R2d2Mode::Uncertain);
        let ck = ck_sent(&analysis.isys).unwrap();
        let last_send = (pre + post) as u64 * eps;
        for (rid, _) in analysis.isys.system().runs() {
            for t in 0..last_send {
                assert!(
                    !ck.contains(analysis.isys.world(rid, t)),
                    "eps={eps} {rid} t={t}"
                );
            }
        }
    }
}

#[test]
fn e6_certainty_restores_ck() {
    // Exact delay and timestamped message both attain CK at t_S + ε (+1).
    for (mode, atom) in [
        (R2d2Mode::Exact, "sent"),
        (R2d2Mode::Timestamped, "sent_focus"),
    ] {
        let analysis = r2d2_interpreted(2, 3, 3, mode);
        let f = Formula::common(g2(), Formula::atom(atom));
        let onset = first_time(&analysis.isys, analysis.meta.focus_slow, &f).unwrap();
        assert_eq!(
            onset,
            Some(analysis.meta.ts + analysis.meta.eps + 1),
            "{mode:?}"
        );
    }
}

#[test]
fn e7_uncertainty_freezes_ck() {
    let isys = uncertain_start_interpreted(6, false).unwrap();
    let fact = Formula::atom("sent");
    // Lemma 14's conclusion for every run.
    for (rid, _) in isys.system().runs() {
        assert!(initial_point_reachable_everywhere(&isys, &g2(), rid));
    }
    // Theorem 8's conclusion.
    assert!(check_ck_run_constant(&isys, &g2(), &fact)
        .unwrap()
        .is_empty());
    assert!(ck_set(&isys, &g2(), &fact).unwrap().is_empty());
}

#[test]
fn e7_global_clock_breaks_imprecision_and_gains_ck() {
    let isys = uncertain_start_interpreted(8, true).unwrap();
    assert!(
        conditions::check_temporal_imprecision(isys.system()).is_some(),
        "a global clock admits no shift witnesses"
    );
    let f = Formula::common(g2(), Formula::atom("five_oclock"));
    let ck = isys.eval(&f).unwrap();
    assert!(!ck.is_empty(), "it is commonly known that it is 5 o'clock");
}

#[test]
fn e7_shift_witnesses_in_clockless_family() {
    // The clockless uncertain-start family has shift witnesses for many
    // (run, t) pairs — the discrete trace of Proposition 15.
    let isys = uncertain_start_interpreted(5, false).unwrap();
    let sys = isys.system();
    let mut found = 0usize;
    for (_, run) in sys.runs() {
        for t in 1..=run.horizon {
            for (i, j) in [(0usize, 1usize), (1, 0)] {
                if conditions::shift_witness(sys, run, t, hm_kripke_agent(i), hm_kripke_agent(j))
                    .is_some()
                {
                    found += 1;
                }
            }
        }
    }
    assert!(found >= 40, "expected many shift witnesses, found {found}");
}

fn hm_kripke_agent(i: usize) -> halpern_moses::kripke::AgentId {
    halpern_moses::kripke::AgentId::new(i)
}
