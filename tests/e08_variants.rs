//! Experiments E8–E12: the attainable variants of common knowledge
//! (paper Sections 11–12).
//!
//! E8: the temporal hierarchy `C ⊃ C^{ε₁} ⊃ C^{ε₂} ⊃ C^◇`; C^ε/C^◇
//!     satisfy the fixed-point axiom, the induction rule, A3 and R1, but
//!     not the knowledge axiom.
//! E9: Theorem 9 and the OK-protocol (failed communication creates
//!     ε-common knowledge; successful communication prevents it).
//! E10: Theorem 11 and the fixed-point vs infinite-conjunction gap.
//! E12: Theorem 12 (a)–(c) and attainment of C^T in a skewed-clock
//!     broadcast.

use halpern_moses::core::puzzles::attack::generals_interpreted;
use halpern_moses::core::variants::{
    check_theorem12a, check_theorem12b, check_theorem12c, check_theorem9, check_variant_hierarchy,
    conjunction_gap, ok_interpreted, skewed_broadcast_interpreted,
};
use halpern_moses::kripke::AgentGroup;
use halpern_moses::logic::axioms::{
    check_fixed_point_axiom, check_induction_rule, check_s5, sample_sets, ModalOp,
};
use halpern_moses::logic::Formula;
use halpern_moses::netsim::scenarios::ok_psi;

fn g2() -> AgentGroup {
    AgentGroup::all(2)
}

#[test]
fn e8_temporal_hierarchy_chain_valid() {
    let isys = generals_interpreted(8).unwrap();
    let fact = Formula::atom("dispatched");
    assert_eq!(
        check_variant_hierarchy(&isys, &g2(), &fact, &[1, 2, 3]).unwrap(),
        None
    );
}

#[test]
fn e8_cev_strictly_weaker_than_ceps() {
    // A reliable asynchronous channel (delivery guaranteed, delay
    // unbounded) attains C^◇ sent but not C^ε sent — the separation the
    // paper draws between Theorem 11 and eventual common knowledge.
    use halpern_moses::kripke::AgentId;
    use halpern_moses::netsim::{
        enumerate_runs, Adversary, Command, ExecutionSpec, FnProtocol, LocalView, Outcome,
    };
    use halpern_moses::runs::{CompleteHistory, InterpretedSystem, Message, System};

    /// Guaranteed delivery, unbounded delay. Delivery is capped at
    /// horizon − 1 so the receive enters the recipient's history inside
    /// the window (in the paper's infinite runs every delivery is
    /// eventually comprehended; a last-tick delivery in a truncation is
    /// not, which would spuriously unravel C^◇ — see DESIGN.md).
    struct GuaranteedUnbounded;
    impl Adversary for GuaranteedUnbounded {
        fn outcomes(
            &self,
            _k: usize,
            sent_at: u64,
            _f: AgentId,
            _t: AgentId,
            _m: &Message,
            horizon: u64,
        ) -> Vec<Outcome> {
            (sent_at + 1..horizon).map(Outcome::Delivered).collect()
        }
    }

    let protocol = FnProtocol::new("oneshot", |v: &LocalView<'_>| {
        if v.me.index() == 0 && v.initial_state == 1 && v.sent().count() == 0 {
            vec![Command::Send {
                to: AgentId::new(1),
                msg: Message::tagged(1),
            }]
        } else {
            Vec::new()
        }
    });
    let mut runs = Vec::new();
    for intent in 0..=1u64 {
        runs.extend(
            enumerate_runs(
                &protocol,
                &GuaranteedUnbounded,
                &ExecutionSpec::simple(2, 6)
                    .with_initial_states(vec![intent, 0])
                    .with_label(format!("i{intent}")),
                256,
            )
            .unwrap(),
        );
    }
    let isys = InterpretedSystem::builder(System::new(runs), CompleteHistory)
        .fact("sent", |run, t| {
            run.proc(AgentId::new(0))
                .events_before(t + 1)
                .any(|e| matches!(e.event, halpern_moses::runs::Event::Send { .. }))
        })
        .build();
    let fact = Formula::atom("sent");
    let cev = isys.eval(&Formula::common_ev(g2(), fact.clone())).unwrap();
    let ceps = isys.eval(&Formula::common_eps(g2(), 1, fact)).unwrap();
    assert!(!cev.is_empty(), "C^◇ sent attained on the reliable channel");
    assert!(ceps.is_empty(), "C^1 sent still unattainable (Theorem 11)");
    assert!(ceps.is_subset(&cev));
}

#[test]
fn e8_ceps_strictly_weaker_than_c() {
    // The R2–D2 channel: C^ε(sent) is attained on receipt while plain C
    // never is (inside the window) — "ε-common knowledge is strictly
    // weaker than common knowledge".
    use halpern_moses::core::puzzles::r2d2::{ck_sent, r2d2_interpreted};
    use halpern_moses::netsim::scenarios::R2d2Mode;
    let (eps, pre, post) = (2u64, 4usize, 4usize);
    let analysis = r2d2_interpreted(eps, pre, post, R2d2Mode::Uncertain);
    let fact = Formula::atom("sent");
    let ceps = analysis
        .isys
        .eval(&Formula::common_eps(g2(), eps, fact))
        .unwrap();
    let c = ck_sent(&analysis.isys).unwrap();
    let last_send = (pre + post) as u64 * eps;
    // C^ε holds at the focus run shortly after the send…
    let focus = analysis.meta.focus_slow;
    let hit = (0..last_send).any(|t| ceps.contains(analysis.isys.world(focus, t)));
    assert!(hit, "C^ε sent should be attained in the window");
    // …where C never does.
    for t in 0..last_send {
        assert!(!c.contains(analysis.isys.world(focus, t)));
    }
}

#[test]
fn e8_s5_profile_of_variants() {
    let isys = generals_interpreted(6).unwrap();
    let suite = sample_sets(&isys, &["dispatched"], 5, 77);
    for op in [
        ModalOp::CommonEps(g2(), 1),
        ModalOp::CommonEv(g2()),
        ModalOp::CommonTs(g2(), 3),
    ] {
        let rep = check_s5(&isys, &op, &suite);
        assert!(rep.satisfies_a3_r1(), "{op:?}: {rep:?}");
        assert_eq!(check_fixed_point_axiom(&isys, &op, &suite), None, "{op:?}");
        assert_eq!(check_induction_rule(&isys, &op, &suite), None, "{op:?}");
    }
}

#[test]
fn e9_theorem9_for_eps_and_ev() {
    let isys = generals_interpreted(8).unwrap();
    let fact = Formula::atom("dispatched");
    for eps in [Some(1), Some(3), None] {
        let out = check_theorem9(&isys, &g2(), &fact, eps).unwrap();
        assert!(out.hypothesis_held, "{eps:?}");
        assert_eq!(out.violation, None, "{eps:?}");
    }
}

#[test]
fn e9_ok_protocol_shape() {
    let isys = ok_interpreted(8).unwrap();
    let psi = Formula::atom("psi");
    let ceps = isys
        .eval(&Formula::common_eps(g2(), 1, psi.clone()))
        .unwrap();
    // ψ ⊃ C^1 ψ at every point of every early-loss run.
    for (rid, run) in isys.system().runs() {
        if !ok_psi(run, 1) {
            continue;
        }
        for t in 1..=run.horizon {
            assert!(ceps.contains(isys.world(rid, t)), "{rid} t={t}");
        }
    }
    // The all-delivered run never has C^1 ψ: Theorem 5 has no analogue.
    let (full, run) = isys
        .system()
        .runs()
        .find(|(_, r)| (0..=r.horizon).all(|t| !ok_psi(r, t)))
        .unwrap();
    for t in 0..=run.horizon {
        assert!(!ceps.contains(isys.world(full, t)));
    }
    // And the knowledge axiom fails: C^1 ψ ∧ ¬ψ at (lost-run, 0).
    let psi_set = isys.eval(&psi).unwrap();
    assert!(!ceps.difference(&psi_set).is_empty());
}

#[test]
fn e10_conjunction_gap() {
    let isys = generals_interpreted(10).unwrap();
    let fact = Formula::atom("dispatched");
    let gaps = conjunction_gap(&isys, &g2(), &fact, 5).unwrap();
    let max_depth = gaps.iter().map(|(_, k, _)| *k).max().unwrap();
    assert!(max_depth >= 2, "deep (E^◇)^k levels are attainable");
    for (rid, depth, cev) in &gaps {
        if *depth >= 2 {
            assert!(!cev, "{rid}: C^◇ must fail despite (E^◇)^{depth}");
        }
    }
}

#[test]
fn e12_theorem12_parts_and_attainment() {
    let fact = Formula::atom("sent_v");
    // (a) identical clocks.
    let sync = skewed_broadcast_interpreted(10, 0).unwrap();
    for stamp in [3u64, 5, 8] {
        assert_eq!(
            check_theorem12a(&sync, &g2(), &fact, stamp).unwrap(),
            None,
            "stamp={stamp}"
        );
    }
    // (b) skew ≤ ε.
    for skew in [1u64, 2] {
        let isys = skewed_broadcast_interpreted(10, skew).unwrap();
        for stamp in [4u64, 6] {
            assert_eq!(
                check_theorem12b(&isys, &g2(), &fact, stamp, skew).unwrap(),
                None,
                "skew={skew} stamp={stamp}"
            );
        }
    }
    // (c) all clocks reach the stamp.
    let isys = skewed_broadcast_interpreted(10, 2).unwrap();
    assert_eq!(check_theorem12c(&isys, &g2(), &fact, 7).unwrap(), None);
    // Attainment: C^T for a late stamp, empty for an early one.
    let late = isys
        .eval(&Formula::common_ts(g2(), 7, fact.clone()))
        .unwrap();
    assert!(late.is_full());
    let early = isys.eval(&Formula::common_ts(g2(), 1, fact)).unwrap();
    assert!(early.is_empty());
}

#[test]
fn e12_weak_converse_shape() {
    // With identical clocks, C and C^T[stamp] agree at stamp points for
    // EVERY stamp — so whenever C is attained, the processors could set a
    // common timestamp (the paper's weak converse).
    let sync = skewed_broadcast_interpreted(10, 0).unwrap();
    let fact = Formula::atom("sent_v");
    let c = sync.eval(&Formula::common(g2(), fact.clone())).unwrap();
    assert!(!c.is_empty(), "C is attainable with a global clock");
    for stamp in 0..=9u64 {
        assert_eq!(check_theorem12a(&sync, &g2(), &fact, stamp).unwrap(), None);
    }
}

#[test]
fn e8_eeps_phi_and_not_phi_satisfiable() {
    // Section 11: "it is not hard to construct an example in which
    // E^ε φ ∧ E^ε ¬φ holds" — because the two witnesses may sit at
    // different points of the ε-interval. One clocked processor that
    // knows φ at t=1 and ¬φ at t=2 does it with ε = 1.
    use halpern_moses::kripke::AgentId;
    use halpern_moses::runs::{CompleteHistory, InterpretedSystem, RunBuilder, System};
    let run = RunBuilder::new("r", 2, 3)
        .wake(AgentId::new(0), 0, 0)
        .wake(AgentId::new(1), 0, 0)
        .perfect_clock(AgentId::new(0), 0)
        .perfect_clock(AgentId::new(1), 0)
        .build();
    let isys = InterpretedSystem::builder(System::new(vec![run]), CompleteHistory)
        .fact("phi", |_r, t| t == 1)
        .build();
    let both = Formula::and([
        Formula::everyone_eps(g2(), 1, Formula::atom("phi")),
        Formula::everyone_eps(g2(), 1, Formula::not(Formula::atom("phi"))),
    ]);
    let holds = isys.eval(&both).unwrap();
    assert!(
        !holds.is_empty(),
        "E^1 phi ∧ E^1 ¬phi should be satisfiable (consequence closure fails)"
    );
}
