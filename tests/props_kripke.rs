//! Property-based tests of the Kripke substrate against naive reference
//! implementations: bitset laws, partition laws, announcement laws.

use halpern_moses::kripke::{
    announce, random_model, AgentGroup, AgentId, Partition, RandomModelSpec, Restriction,
    SplitMix64, WorldId, WorldSet,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn naive_from(ws: &WorldSet) -> BTreeSet<usize> {
    ws.iter().map(|w| w.index()).collect()
}

fn random_set(n: usize, seed: u64) -> WorldSet {
    let mut rng = SplitMix64::new(seed);
    let mut s = WorldSet::empty(n);
    for w in 0..n {
        if rng.next_bool(1, 2) {
            s.insert(WorldId::new(w));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_ops_match_btreeset(n in 1usize..200, sa in 0u64..1000, sb in 0u64..1000) {
        let a = random_set(n, sa);
        let b = random_set(n, sb);
        let (na, nb) = (naive_from(&a), naive_from(&b));
        prop_assert_eq!(naive_from(&a.union(&b)), na.union(&nb).cloned().collect::<BTreeSet<_>>());
        prop_assert_eq!(naive_from(&a.intersection(&b)), na.intersection(&nb).cloned().collect::<BTreeSet<_>>());
        prop_assert_eq!(naive_from(&a.difference(&b)), na.difference(&nb).cloned().collect::<BTreeSet<_>>());
        prop_assert_eq!(a.count(), na.len());
        prop_assert_eq!(a.is_subset(&b), na.is_subset(&nb));
        prop_assert_eq!(a.is_disjoint(&b), na.is_disjoint(&nb));
        let comp = naive_from(&a.complement());
        let expected: BTreeSet<usize> = (0..n).filter(|w| !na.contains(w)).collect();
        prop_assert_eq!(comp, expected);
    }

    #[test]
    fn partition_laws(n in 1usize..60, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let blocks = 1 + rng.next_below(6);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(blocks)).collect();
        let p = Partition::from_key(n, |w| keys[w.index()]);
        let keys2: Vec<u64> = (0..n).map(|_| rng.next_below(blocks)).collect();
        let q = Partition::from_key(n, |w| keys2[w.index()]);
        // meet refines both; both refine join.
        let meet = p.meet(&q);
        let join = p.join(&q);
        prop_assert!(meet.refines(&p) && meet.refines(&q));
        prop_assert!(p.refines(&join) && q.refines(&join));
        // Knowledge under the meet contains knowledge under either
        // (finer = more knowledge); join is the reverse.
        let a = random_set(n, seed ^ 0xAA);
        prop_assert!(p.knowledge(&a).is_subset(&meet.knowledge(&a)));
        prop_assert!(join.knowledge(&a).is_subset(&p.knowledge(&a)));
        // K(A) ⊆ A ⊆ P(A), and P is the dual of K.
        let k = p.knowledge(&a);
        let poss = p.possibility(&a);
        prop_assert!(k.is_subset(&a));
        prop_assert!(a.is_subset(&poss));
        prop_assert_eq!(poss, p.knowledge(&a.complement()).complement());
    }

    #[test]
    fn knowledge_via_naive_blocks(n in 1usize..40, seed in 0u64..500) {
        // Reference implementation: w ∈ K(A) iff the whole block of w is
        // inside A, computed by scanning.
        let mut rng = SplitMix64::new(seed);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(4)).collect();
        let p = Partition::from_key(n, |w| keys[w.index()]);
        let a = random_set(n, seed ^ 0xBB);
        let fast = p.knowledge(&a);
        for w in 0..n {
            let expected = (0..n)
                .filter(|&v| keys[v] == keys[w])
                .all(|v| a.contains(WorldId::new(v)));
            prop_assert_eq!(fast.contains(WorldId::new(w)), expected, "w={}", w);
        }
    }

    #[test]
    fn announcement_laws(seed in 0u64..2000) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 2,
            num_worlds: 10,
            num_atoms: 2,
            max_blocks: 4,
        });
        let q0 = m.atom_set(0.into());
        prop_assume!(!q0.is_empty());
        // Announcing φ makes φ common knowledge in the restricted model.
        let (sub, _) = announce(&m, &q0).unwrap();
        let g = AgentGroup::all(2);
        let q0_sub = sub.atom_set(sub.atom_id("q0").unwrap());
        prop_assert!(sub.common_knowledge(&g, &q0_sub).is_full());
        // Announcing twice = announcing once (idempotence).
        let mut r = Restriction::new(&m);
        r.announce(&q0).unwrap();
        let once = r.alive().clone();
        r.announce(&q0).unwrap();
        prop_assert_eq!(&once, r.alive());
        // Announcing `true` changes nothing.
        let mut r2 = Restriction::new(&m);
        r2.announce(&m.full_set()).unwrap();
        prop_assert!(r2.alive().is_full());
    }

    #[test]
    fn restriction_matches_materialised_model(seed in 0u64..2000) {
        let m = random_model(seed, RandomModelSpec::default());
        let q0 = m.atom_set(0.into());
        prop_assume!(!q0.is_empty());
        let mut r = Restriction::new(&m);
        r.announce(&q0).unwrap();
        let (sub, remap) = r.to_model();
        let g = AgentGroup::all(m.num_agents());
        let q1 = m.atom_set(1.into());
        let q1_sub = sub.atom_set(sub.atom_id("q1").unwrap());
        let rel = r.common_knowledge(&g, &q1);
        let mat = sub.common_knowledge(&g, &q1_sub);
        for w in sub.worlds() {
            prop_assert_eq!(mat.contains(w), rel.contains(remap.old_id(w)));
        }
        // Relativised single-agent knowledge agrees as well.
        let relk = r.knowledge(AgentId::new(0), &q1);
        let matk = sub.knowledge(AgentId::new(0), &q1_sub);
        for w in sub.worlds() {
            prop_assert_eq!(matk.contains(w), relk.contains(remap.old_id(w)));
        }
    }

    #[test]
    fn from_dense_keys_matches_from_key(n in 1usize..300, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let num_keys = 1 + rng.next_below(24) as usize;
        let keys: Vec<u32> = (0..n).map(|_| rng.next_below(num_keys as u64) as u32).collect();
        let dense = Partition::from_dense_keys(n, &keys, num_keys);
        let hashed = Partition::from_key(n, |w| keys[w.index()]);
        prop_assert_eq!(dense, hashed);
    }

    #[test]
    fn common_knowledge_agrees_with_materialised_reachability(seed in 0u64..500) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 3,
            num_worlds: 40,
            num_atoms: 1,
            max_blocks: 8,
        });
        let g = AgentGroup::all(3);
        let fact = m.atom_set(0.into());
        let bfs = m.common_knowledge(&g, &fact);
        let via_join = m.reachability_partition(&g).knowledge(&fact);
        prop_assert_eq!(&bfs, &via_join);
        prop_assert_eq!(&bfs, &m.common_knowledge_gfp(&g, &fact));
    }

    #[test]
    fn e_tower_decreases_and_c_is_its_limit(seed in 0u64..2000) {
        // E^{k+1} ⊆ E^k, and once the tower stabilises it equals C (on
        // finite models the limit is reached).
        let m = random_model(seed, RandomModelSpec {
            num_agents: 3,
            num_worlds: 14,
            num_atoms: 1,
            max_blocks: 5,
        });
        let g = AgentGroup::all(3);
        let fact = m.atom_set(0.into());
        let mut prev = fact.clone();
        let mut tower = Vec::new();
        for _ in 0..40 {
            let next = m.everyone_knows(&g, &prev);
            prop_assert!(next.is_subset(&prev));
            if next == prev {
                break;
            }
            tower.push(next.clone());
            prev = next;
        }
        prop_assert_eq!(prev, m.common_knowledge(&g, &fact));
    }
}

/// Blocks of a partition as a canonical (sorted) list of sorted lists, for
/// representation-independent comparison with naive references.
fn sorted_blocks(p: &Partition) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = p
        .blocks()
        .map(|b| b.iter().map(|&w| w as usize).collect())
        .collect();
    out.sort();
    out
}

/// Naive meet: block-by-block set intersection, the reference semantics
/// the O(n) stamp-based kernel must reproduce.
fn naive_meet_blocks(p: &Partition, q: &Partition) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for bp in p.blocks() {
        let sp: BTreeSet<usize> = bp.iter().map(|&w| w as usize).collect();
        for bq in q.blocks() {
            let inter: Vec<usize> = bq
                .iter()
                .map(|&w| w as usize)
                .filter(|w| sp.contains(w))
                .collect();
            if !inter.is_empty() {
                out.push(inter);
            }
        }
    }
    out.sort();
    out
}

/// Naive join: start from `p`'s blocks and merge, for each block of `q`,
/// every current class its members touch (global relabel — one pass is a
/// full equivalence closure, since relabelling keeps classes whole).
fn naive_join_blocks(p: &Partition, q: &Partition, n: usize) -> Vec<Vec<usize>> {
    let mut label: Vec<usize> = (0..n).map(|w| p.block_of(WorldId::new(w))).collect();
    for bq in q.blocks() {
        let touched: BTreeSet<usize> = bq.iter().map(|&w| label[w as usize]).collect();
        let target = *touched.iter().next().expect("blocks are non-empty");
        if touched.len() > 1 {
            for l in label.iter_mut() {
                if touched.contains(l) {
                    *l = target;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (w, &l) in label.iter().enumerate() {
        groups.entry(l).or_default().push(w);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort();
    out
}

fn random_partition(n: usize, max_blocks: u64, seed: u64) -> Partition {
    let mut rng = SplitMix64::new(seed);
    let blocks = 1 + rng.next_below(max_blocks);
    let keys: Vec<u64> = (0..n).map(|_| rng.next_below(blocks)).collect();
    Partition::from_key(n, |w| keys[w.index()])
}

proptest! {
    // Large universes (up to 4096 worlds) against the naive references;
    // fewer cases, since each one is big.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn meet_matches_naive_block_intersection(n in 1usize..4097, seed in 0u64..1_000_000) {
        let p = random_partition(n, n as u64 / 8 + 1, seed);
        let q = random_partition(n, 16, seed ^ 0x5EED);
        prop_assert_eq!(sorted_blocks(&p.meet(&q)), naive_meet_blocks(&p, &q));
        // Canonical numbering: the kernel agrees with from_key on pairs.
        let pairwise = Partition::from_key(n, |w| (p.block_of(w), q.block_of(w)));
        prop_assert_eq!(p.meet(&q), pairwise);
    }

    #[test]
    fn join_matches_naive_closure(n in 1usize..4097, seed in 0u64..1_000_000) {
        let p = random_partition(n, n as u64 / 8 + 1, seed);
        let q = random_partition(n, 16, seed ^ 0x1015);
        prop_assert_eq!(sorted_blocks(&p.join(&q)), naive_join_blocks(&p, &q, n));
    }
}
