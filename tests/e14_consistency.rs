//! Experiment E14: internal knowledge consistency (paper Section 13).
//!
//! The "eager" epistemic interpretation — acting as if common knowledge
//! held the moment the message is sent/received — is not knowledge
//! consistent, but it *is* internally knowledge consistent: the
//! instant-delivery subsystem makes all beliefs true and realises every
//! observable history.

use halpern_moses::core::consistency::{
    find_internally_consistent_subsystem, history_measurable, internally_consistent_with,
    knowledge_consistent, BeliefAssignment, IkcOutcome,
};
use halpern_moses::kripke::{AgentId, WorldSet};
use halpern_moses::logic::Frame;
use halpern_moses::runs::{
    CompleteHistory, Event, InterpretedSystem, Message, RunBuilder, RunId, System,
};

fn a(i: usize) -> AgentId {
    AgentId::new(i)
}

/// A send-time family with fast (delay 0) and slow (delay 1) variants;
/// the last slot is fast-only so slow receive times are covered.
fn family(slots: u64) -> InterpretedSystem {
    let msg = Message::tagged(1);
    let horizon = slots + 3;
    let mut runs = Vec::new();
    for s in 0..=slots {
        let base = |name: String| {
            RunBuilder::new(name, 2, horizon)
                .wake(a(0), 0, 0)
                .wake(a(1), 0, 0)
                .perfect_clock(a(0), 0)
                .perfect_clock(a(1), 0)
        };
        runs.push(
            base(format!("fast{s}"))
                .event(a(0), s, Event::Send { to: a(1), msg })
                .event(a(1), s, Event::Recv { from: a(0), msg })
                .build(),
        );
        if s < slots {
            runs.push(
                base(format!("slow{s}"))
                    .event(a(0), s, Event::Send { to: a(1), msg })
                    .event(a(1), s + 1, Event::Recv { from: a(0), msg })
                    .build(),
            );
        }
    }
    InterpretedSystem::builder(System::new(runs), CompleteHistory)
        .fact("both_aware", |run, t| {
            run.proc(a(0)).events_before(t).count() > 0
                && run.proc(a(1)).events_before(t).count() > 0
        })
        .build()
}

fn eager_beliefs(isys: &InterpretedSystem) -> BeliefAssignment {
    BeliefAssignment::from_predicates(
        isys,
        &[
            Box::new(|run: &halpern_moses::runs::Run, t: u64| {
                run.proc(a(0)).events_before(t).count() > 0
            }),
            Box::new(|run: &halpern_moses::runs::Run, t: u64| {
                run.proc(a(1)).events_before(t).count() > 0
            }),
        ],
    )
}

#[test]
fn eager_interpretation_full_story() {
    for slots in [2u64, 4] {
        let isys = family(slots);
        let beliefs = eager_beliefs(&isys);
        let fact = Frame::atom_set(&isys, "both_aware").unwrap();
        // Measurable, not knowledge consistent, internally consistent.
        for i in 0..2 {
            assert!(history_measurable(&isys, a(i), &beliefs.believes[i]));
        }
        assert!(!knowledge_consistent(&beliefs, &fact), "slots={slots}");
        let fasts: Vec<RunId> = (0..=slots)
            .map(|s| isys.system().run_by_name(&format!("fast{s}")).unwrap())
            .collect();
        assert!(
            internally_consistent_with(&isys, &beliefs, &fact, &fasts),
            "slots={slots}"
        );
        match find_internally_consistent_subsystem(&isys, &beliefs, &fact) {
            IkcOutcome::Consistent(_) => {}
            IkcOutcome::Inconsistent => panic!("search missed the witness"),
        }
    }
}

#[test]
fn truthful_beliefs_are_trivially_internally_consistent() {
    let isys = family(2);
    let fact = Frame::atom_set(&isys, "both_aware").unwrap();
    // Believing exactly when the fact is known is knowledge consistent,
    // hence internally consistent with the FULL system.
    let k0 = Frame::knowledge_set(&isys, a(0), &fact);
    let k1 = Frame::knowledge_set(&isys, a(1), &fact);
    let beliefs = BeliefAssignment {
        believes: vec![k0, k1],
    };
    assert!(knowledge_consistent(&beliefs, &fact));
    let all: Vec<RunId> = isys.system().runs().map(|(id, _)| id).collect();
    assert!(internally_consistent_with(&isys, &beliefs, &fact, &all));
}

#[test]
fn globally_false_belief_is_not_internally_consistent() {
    let isys = family(2);
    // Believing a fact that holds nowhere can't be rescued by any
    // subsystem (beliefs are non-empty and coverage forces them in).
    let empty_fact = WorldSet::empty(isys.model().num_worlds());
    let beliefs = eager_beliefs(&isys);
    assert_eq!(
        find_internally_consistent_subsystem(&isys, &beliefs, &empty_fact),
        IkcOutcome::Inconsistent
    );
}
