//! Experiment E16: the spectrum of view-based interpretations
//! (paper Section 6).
//!
//! - The single-view `Λ` interpretation collapses the hierarchy: every
//!   system-valid fact is common knowledge.
//! - A bounded "local state" view can forget; the complete-history view
//!   never does (`K_i φ ⊃ □ K_i once(φ)` is valid under complete
//!   history).
//! - The complete-history interpretation is the finest: it yields at
//!   least as much knowledge as any other view.

use halpern_moses::kripke::{AgentGroup, AgentId};
use halpern_moses::logic::{Formula, Frame};
use halpern_moses::runs::{
    last_event_view, ClockOnly, CompleteHistory, Event, InterpretedSystem, Message, RunBuilder,
    SharedLambda, System, ViewFunction, ViewInterner,
};

fn a(i: usize) -> AgentId {
    AgentId::new(i)
}

fn msg_runs() -> Vec<halpern_moses::runs::Run> {
    let msg = Message::tagged(1);
    // Two sends of the same message vs one send vs none.
    let mut runs = vec![RunBuilder::new("twice", 2, 4)
        .wake(a(0), 0, 0)
        .wake(a(1), 0, 0)
        .event(a(0), 1, Event::Send { to: a(1), msg })
        .event(a(0), 2, Event::Send { to: a(1), msg })
        .build()];
    runs.push(
        RunBuilder::new("once", 2, 4)
            .wake(a(0), 0, 0)
            .wake(a(1), 0, 0)
            .event(a(0), 1, Event::Send { to: a(1), msg })
            .build(),
    );
    runs.push(
        RunBuilder::new("never", 2, 4)
            .wake(a(0), 0, 0)
            .wake(a(1), 0, 0)
            .build(),
    );
    runs
}

fn facts(b: halpern_moses::runs::InterpretedSystemBuilder) -> InterpretedSystem {
    b.fact("sent_twice", |run, t| {
        run.proc(a(0))
            .events_before(t + 1)
            .filter(|e| matches!(e.event, Event::Send { .. }))
            .count()
            >= 2
    })
    .fact("sent", |run, t| {
        run.proc(a(0))
            .events_before(t + 1)
            .any(|e| matches!(e.event, Event::Send { .. }))
    })
    .build()
}

#[test]
fn lambda_view_collapses_everything_valid_to_common_knowledge() {
    let isys = facts(InterpretedSystem::builder(
        System::new(msg_runs()),
        SharedLambda,
    ));
    let g = AgentGroup::all(2);
    // `sent -> sent` is valid, so it is common knowledge under Λ.
    let f = Formula::common(
        g,
        Formula::implies(Formula::atom("sent"), Formula::atom("sent")),
    );
    assert!(isys.valid(&f).unwrap());
    // And nothing contingent is even known: K_0 sent fails everywhere.
    let k = Formula::knows(a(0), Formula::atom("sent"));
    assert!(isys.eval(&k).unwrap().is_empty());
}

#[test]
fn complete_history_never_forgets() {
    let isys = facts(InterpretedSystem::builder(
        System::new(msg_runs()),
        CompleteHistory,
    ));
    // K0 sent ⊃ □ K0 once(sent) — once known, the sender knows it ever
    // after (complete histories only grow).
    let f = Formula::implies(
        Formula::knows(a(0), Formula::atom("sent")),
        Formula::always(Formula::knows(a(0), Formula::once(Formula::atom("sent")))),
    );
    assert!(isys.valid(&f).unwrap());
}

#[test]
fn last_event_view_forgets_the_count() {
    let full = facts(InterpretedSystem::builder(
        System::new(msg_runs()),
        CompleteHistory,
    ));
    let forgetful = facts(InterpretedSystem::builder(
        System::new(msg_runs()),
        last_event_view(),
    ));
    let k_twice = Formula::knows(a(0), Formula::atom("sent_twice"));
    // Under complete history the sender knows it sent twice…
    let twice_run = full.system().run_by_name("twice").unwrap();
    assert!(full.holds(&k_twice, twice_run, 3).unwrap());
    // …under the last-event view it cannot tell two sends from one.
    let twice_run = forgetful.system().run_by_name("twice").unwrap();
    assert!(!forgetful.holds(&k_twice, twice_run, 3).unwrap());
}

#[test]
fn interned_view_ids_pin_the_vec_encodings() {
    // The hot path interns scratch-buffer encodings into dense ids; the
    // cold path materialises `Vec<u64>` keys. Two points must get the same
    // id iff their keys are equal — for every view in the spectrum, over a
    // system mixing clocks, wake times and event histories.
    let mut runs = msg_runs();
    runs.push(
        RunBuilder::new("clocked", 2, 4)
            .wake(a(0), 1, 3)
            .wake(a(1), 0, 0)
            .clock_readings(a(0), vec![0, 5, 5, 6, 8])
            .clock_readings(a(1), vec![2, 3, 3, 3, 9])
            .event(
                a(0),
                2,
                Event::Send {
                    to: a(1),
                    msg: Message::tagged(4),
                },
            )
            .build(),
    );
    let sys = System::new(runs);
    let views: Vec<Box<dyn ViewFunction>> = vec![
        Box::new(CompleteHistory),
        Box::new(SharedLambda),
        Box::new(ClockOnly),
        Box::new(last_event_view()),
    ];
    for view in &views {
        for agent in [a(0), a(1)] {
            let mut interner = ViewInterner::new();
            let mut scratch = Vec::new();
            let mut ids = Vec::new();
            let mut keys = Vec::new();
            for (_, r) in sys.runs() {
                for t in 0..=r.horizon {
                    scratch.clear();
                    view.encode_view(r, agent, t, &mut scratch);
                    let id = interner.intern(&scratch);
                    assert_eq!(
                        interner.get(id),
                        &scratch[..],
                        "interner must store the encoding verbatim"
                    );
                    ids.push(id);
                    keys.push(view.view_key(r, agent, t));
                    assert_eq!(
                        keys.last().unwrap(),
                        &scratch,
                        "view_key and encode_view must agree ({})",
                        view.name()
                    );
                }
            }
            for i in 0..ids.len() {
                for j in 0..ids.len() {
                    assert_eq!(
                        ids[i] == ids[j],
                        keys[i] == keys[j],
                        "view {} agent {agent}: points {i},{j} disagree",
                        view.name()
                    );
                }
            }
        }
    }
}

#[test]
fn complete_history_knows_at_least_as_much_as_any_view() {
    // For every atom and agent: knowledge under a coarser view is a
    // subset of knowledge under complete history.
    let full = facts(InterpretedSystem::builder(
        System::new(msg_runs()),
        CompleteHistory,
    ));
    for coarse in [
        facts(InterpretedSystem::builder(
            System::new(msg_runs()),
            SharedLambda,
        )),
        facts(InterpretedSystem::builder(
            System::new(msg_runs()),
            last_event_view(),
        )),
    ] {
        for atom in ["sent", "sent_twice"] {
            let set_full = Frame::atom_set(&full, atom).unwrap();
            let set_coarse = Frame::atom_set(&coarse, atom).unwrap();
            assert_eq!(set_full, set_coarse, "same facts, same worlds");
            for i in 0..2 {
                let k_coarse = Frame::knowledge_set(&coarse, a(i), &set_coarse);
                let k_full = Frame::knowledge_set(&full, a(i), &set_full);
                assert!(
                    k_coarse.is_subset(&k_full),
                    "view {} atom {atom} agent {i}",
                    coarse.view_name()
                );
            }
        }
    }
}
