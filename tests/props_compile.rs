//! Differential property tests of the compiled evaluator: the flat
//! instruction buffer produced by `hm-logic::compile` must agree with the
//! tree-walking reference evaluator on every frame and every well-formed
//! formula — random Kripke models up to 4096 worlds for the static
//! fragment (including `ν`/`µ` fixed points), and random interpreted
//! systems for the temporal operators.

use halpern_moses::kripke::{
    random_model, AgentGroup, AgentId, RandomModelSpec, SplitMix64, WorldId,
};
use halpern_moses::logic::{compile, evaluate, evaluate_tree, Formula, F};
use halpern_moses::runs::{
    CompleteHistory, Event, InterpretedSystem, Message, Run, RunBuilder, System,
};
use proptest::prelude::*;

fn g2() -> AgentGroup {
    AgentGroup::all(2)
}

/// Random static-fragment formulas over atoms q0/q1 and two agents,
/// including monotone fixed-point binders: `νX. E_G(φ ∧ X)` and
/// `µX. φ ∨ S_G X` shapes, nested and shadowing freely.
fn static_formula() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        Just(Formula::atom("q0")),
        Just(Formula::atom("q1")),
        Just(Formula::tt()),
        Just(Formula::ff()),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (0usize..2, inner.clone()).prop_map(|(i, a)| Formula::knows(AgentId::new(i), a)),
            (1u32..3, inner.clone()).prop_map(|(k, a)| Formula::everyone_k(g2(), k, a)),
            inner.clone().prop_map(|a| Formula::someone(g2(), a)),
            inner.clone().prop_map(|a| Formula::distributed(g2(), a)),
            inner.clone().prop_map(|a| Formula::common(g2(), a)),
            // Monotone binders: the variable occurs positively by
            // construction; nesting re-binds X, exercising slot
            // resolution under shadowing.
            inner.clone().prop_map(|a| Formula::gfp(
                "X",
                Formula::everyone(g2(), Formula::and([a, Formula::var("X")]))
            )),
            inner.prop_map(|a| Formula::lfp(
                "X",
                Formula::or([a, Formula::someone(g2(), Formula::var("X"))])
            )),
        ]
    })
}

/// Random temporal formulas for interpreted systems: the static fragment
/// plus the run-temporal and ε/◇/timestamp operators of Sections 11–12.
fn temporal_formula() -> impl Strategy<Value = F> {
    static_formula().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::next),
            inner.clone().prop_map(Formula::eventually),
            inner.clone().prop_map(Formula::always),
            inner.clone().prop_map(Formula::once),
            (0u64..3, inner.clone()).prop_map(|(e, a)| Formula::everyone_eps(g2(), e, a)),
            (0u64..3, inner.clone()).prop_map(|(e, a)| Formula::common_eps(g2(), e, a)),
            inner.clone().prop_map(|a| Formula::everyone_ev(g2(), a)),
            inner.clone().prop_map(|a| Formula::common_ev(g2(), a)),
            (0usize..2, 0u64..6, inner.clone()).prop_map(|(i, t, a)| Formula::knows_at(
                AgentId::new(i),
                t,
                a
            )),
            (0u64..6, inner.clone()).prop_map(|(t, a)| Formula::everyone_ts(g2(), t, a)),
            (0u64..6, inner).prop_map(|(t, a)| Formula::common_ts(g2(), t, a)),
        ]
    })
}

/// A deterministic random two-processor system: 2–4 runs over horizon
/// 3–5, random wakes, optional skewed clocks, random send/receive events.
fn random_system(seed: u64) -> InterpretedSystem {
    let mut rng = SplitMix64::new(seed);
    let horizon = 3 + rng.next_below(3);
    let clocked = rng.next_bool(1, 2);
    let num_runs = 2 + rng.next_below(3) as usize;
    let mut runs: Vec<Run> = Vec::new();
    for r in 0..num_runs {
        let mut b = RunBuilder::new(format!("r{r}"), 2, horizon);
        let mut wakes = [0u64; 2];
        for (i, wake_slot) in wakes.iter_mut().enumerate() {
            let wake = rng.next_below(2);
            *wake_slot = wake;
            b = b.wake(AgentId::new(i), wake, rng.next_below(3));
            if clocked {
                b = b.perfect_clock(AgentId::new(i), rng.next_below(2));
            }
        }
        for (i, &wake) in wakes.iter().enumerate() {
            for _ in 0..rng.next_below(3) {
                let span = horizon - wake + 1;
                let t = wake + rng.next_below(span);
                let msg = Message::tagged(rng.next_below(3) as u32);
                let other = AgentId::new(1 - i);
                let event = if rng.next_bool(1, 2) {
                    Event::Send { to: other, msg }
                } else {
                    Event::Recv { from: other, msg }
                };
                b = b.event(AgentId::new(i), t, event);
            }
        }
        runs.push(b.build());
    }
    InterpretedSystem::builder(System::new(runs), CompleteHistory)
        .fact("q0", |run, t| {
            (t + run.proc(AgentId::new(0)).initial_state) % 2 == 0
        })
        .fact("q1", |run, t| run.deliveries_before(t + 1) > 0)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_matches_tree_walk_static(f in static_formula(), seed in 0u64..400) {
        let m = random_model(seed, RandomModelSpec::default());
        let compiled = compile(&f).unwrap();
        prop_assert_eq!(
            compiled.eval(&m).unwrap(),
            evaluate_tree(&m, &f).unwrap(),
            "formula {}", f
        );
        // The public `evaluate` wrapper is the compiled path.
        prop_assert_eq!(compiled.eval(&m).unwrap(), evaluate(&m, &f).unwrap());
    }

    #[test]
    fn compiled_matches_tree_walk_temporal(f in temporal_formula(), seed in 0u64..400) {
        let isys = random_system(seed);
        let compiled = compile(&f).unwrap();
        prop_assert_eq!(
            compiled.eval(&isys).unwrap(),
            evaluate_tree(&isys, &f).unwrap(),
            "formula {}", f
        );
    }

    #[test]
    fn bound_reuse_is_stable(f in static_formula(), seed in 0u64..200) {
        // bind once, evaluate repeatedly: identical results each time.
        let m = random_model(seed, RandomModelSpec::default());
        let compiled = compile(&f).unwrap();
        let bound = compiled.bind(&m).unwrap();
        let first = compiled.eval_bound(&m, &bound);
        prop_assert_eq!(&first, &compiled.eval_bound(&m, &bound));
        prop_assert_eq!(first, evaluate_tree(&m, &f).unwrap());
    }
}

proptest! {
    // Large universes: few cases, each up to 4096 worlds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn compiled_matches_tree_walk_up_to_4096_worlds(
        f in static_formula(),
        n in 64usize..4097,
        seed in 0u64..100_000,
    ) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 2,
            num_worlds: n,
            num_atoms: 2,
            max_blocks: n / 8 + 1,
        });
        let compiled = compile(&f).unwrap();
        prop_assert_eq!(
            compiled.eval(&m).unwrap(),
            evaluate_tree(&m, &f).unwrap(),
            "n={} formula {}", n, f
        );
    }
}

#[test]
fn spot_check_known_denotations() {
    // A fixed chain model where every operator's denotation is known —
    // guards against the differential tests agreeing on a shared bug.
    let mut b = halpern_moses::kripke::ModelBuilder::new(2);
    for i in 0..3 {
        b.add_world(format!("w{i}"));
    }
    let p = b.atom("q0");
    b.set_atom(p, WorldId::new(0), true);
    b.set_atom(p, WorldId::new(1), true);
    b.set_partition_by_key(AgentId::new(0), |w| w.index().max(1));
    b.set_partition_by_key(AgentId::new(1), |w| w.index().min(1));
    let m = b.build();
    let cases: &[(&str, &[usize])] = &[
        ("q0", &[0, 1]),
        ("K0 q0", &[0, 1]),
        ("K1 q0", &[0]),
        ("E{0,1} q0", &[0]),
        ("C{0,1} q0", &[]),
        ("nu X. E{0,1} (q0 & $X)", &[]),
    ];
    for (src, worlds) in cases {
        let f = halpern_moses::logic::parse(src).unwrap();
        let got = compile(&f).unwrap().eval(&m).unwrap();
        let want: Vec<usize> = got.iter().map(|w| w.index()).collect();
        assert_eq!(&want, worlds, "{src}");
    }
}
