//! Property-based tests of the logic layer: parser/printer round-trip
//! over random formulas, Boolean laws of the evaluator, and the
//! fixed-point/conjunction equivalence where downward continuity holds.

use halpern_moses::kripke::{random_model, AgentGroup, AgentId, RandomModelSpec};
use halpern_moses::logic::{evaluate, parse, Formula, F};
use proptest::prelude::*;
use std::sync::Arc;

/// A recursive strategy for random (static-fragment) formulas over atoms
/// q0/q1 and two agents.
fn formula_strategy() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        Just(Formula::atom("q0")),
        Just(Formula::atom("q1")),
        Just(Formula::tt()),
        Just(Formula::ff()),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (0usize..2, inner.clone()).prop_map(|(i, a)| Formula::knows(AgentId::new(i), a)),
            (1u32..4, inner.clone()).prop_map(|(k, a)| Formula::everyone_k(
                AgentGroup::all(2),
                k,
                a
            )),
            inner
                .clone()
                .prop_map(|a| Formula::someone(AgentGroup::all(2), a)),
            inner
                .clone()
                .prop_map(|a| Formula::distributed(AgentGroup::all(2), a)),
            inner.prop_map(|a| Formula::common(AgentGroup::all(2), a)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_round_trip(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        prop_assert_eq!(&f, &reparsed, "printed as {}", printed);
    }

    #[test]
    fn boolean_laws_hold_pointwise(f in formula_strategy(), g in formula_strategy(), seed in 0u64..500) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 2,
            num_worlds: 9,
            num_atoms: 2,
            max_blocks: 3,
        });
        let fv = evaluate(&m, &f).unwrap();
        let gv = evaluate(&m, &g).unwrap();
        // ¬¬f ≡ f (evaluator level, despite constructor collapsing).
        let nn = evaluate(&m, &Formula::Not(Formula::Not(f.clone()).arc())).unwrap();
        prop_assert_eq!(&nn, &fv);
        // f ∧ g ≡ ¬(¬f ∨ ¬g).
        let and = evaluate(&m, &Formula::and([f.clone(), g.clone()])).unwrap();
        let demorgan = evaluate(
            &m,
            &Formula::not(Formula::or([Formula::not(f.clone()), Formula::not(g.clone())])),
        )
        .unwrap();
        prop_assert_eq!(&and, &demorgan);
        // f → g ≡ ¬f ∨ g.
        let imp = evaluate(&m, &Formula::implies(f.clone(), g.clone())).unwrap();
        prop_assert_eq!(naive_implies(&fv, &gv), imp);
        // f ↔ g ≡ (f → g) ∧ (g → f).
        let iff = evaluate(&m, &Formula::iff(f.clone(), g.clone())).unwrap();
        let both = evaluate(
            &m,
            &Formula::and([
                Formula::implies(f.clone(), g.clone()),
                Formula::implies(g.clone(), f.clone()),
            ]),
        )
        .unwrap();
        prop_assert_eq!(iff, both);
    }

    #[test]
    fn common_equals_e_tower_conjunction(f in formula_strategy(), seed in 0u64..500) {
        // In finite models E_G is downward continuous, so the greatest
        // fixed point coincides with the infinite conjunction ⋀ E^k φ
        // (Appendix A) — here the conjunction stabilises at or before
        // |worlds| iterations.
        let m = random_model(seed, RandomModelSpec::default());
        let g = AgentGroup::all(m.num_agents());
        let phi = evaluate(&m, &f).unwrap();
        let mut conj = phi.clone();
        let mut cur = phi;
        for _ in 0..m.num_worlds() + 1 {
            cur = m.everyone_knows(&g, &cur);
            conj.intersect_with(&cur);
        }
        let c = evaluate(&m, &Formula::common(g, f)).unwrap();
        prop_assert_eq!(c, conj);
    }

    #[test]
    fn knowledge_axiom_and_introspection_hold_for_arbitrary_formulas(
        f in formula_strategy(), seed in 0u64..500
    ) {
        let m = random_model(seed, RandomModelSpec::default());
        for i in 0..2usize {
            let ki: F = Formula::knows(AgentId::new(i), f.clone());
            let kv = evaluate(&m, &ki).unwrap();
            let fv = evaluate(&m, &f).unwrap();
            prop_assert!(kv.is_subset(&fv), "A1");
            let kkv = evaluate(&m, &Formula::knows(AgentId::new(i), ki.clone())).unwrap();
            prop_assert_eq!(&kv, &kkv, "A3 (kernel idempotence)");
        }
    }

    #[test]
    fn gfp_of_identity_like_bodies(seed in 0u64..200) {
        // νX.(φ ∧ X) ≡ φ and µX.(φ ∨ X) ≡ φ — sanity laws of the
        // fixed-point engine.
        let m = random_model(seed, RandomModelSpec::default());
        let phi = Formula::atom("q0");
        let nu = evaluate(&m, &Formula::gfp("X", Formula::and([phi.clone(), Formula::var("X")]))).unwrap();
        let mu = evaluate(&m, &Formula::lfp("X", Formula::or([phi.clone(), Formula::var("X")]))).unwrap();
        let direct = evaluate(&m, &phi).unwrap();
        prop_assert_eq!(&nu, &direct);
        prop_assert_eq!(&mu, &direct);
    }
}

fn naive_implies(
    a: &halpern_moses::kripke::WorldSet,
    b: &halpern_moses::kripke::WorldSet,
) -> halpern_moses::kripke::WorldSet {
    a.complement().union(b)
}

#[test]
fn formula_sharing_is_cheap() {
    // Arc sharing: a deeply nested formula reuses subterms without
    // cloning them (structural identity check).
    let base = Formula::atom("q0");
    let f = Formula::and([base.clone(), base]);
    match &*f {
        Formula::And(parts) => {
            assert!(Arc::ptr_eq(&parts[0], &parts[1]));
        }
        other => panic!("expected And, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Appendix A, fact 1: positive occurrence ⇒ monotone denotation.
// We realise "free variable" as a controllable extra atom on a shim
// frame, build random positive contexts around it, and check
// A ⊆ B ⇒ ctx[A] ⊆ ctx[B].
// ---------------------------------------------------------------------

use halpern_moses::kripke::{KripkeModel, SplitMix64, WorldId, WorldSet};
use halpern_moses::logic::Frame;

struct WithAtom<'a> {
    inner: &'a KripkeModel,
    set: WorldSet,
}

impl Frame for WithAtom<'_> {
    fn num_worlds(&self) -> usize {
        Frame::num_worlds(self.inner)
    }
    fn num_agents(&self) -> usize {
        Frame::num_agents(self.inner)
    }
    fn atom_set(&self, name: &str) -> Option<WorldSet> {
        if name == "XSET" {
            Some(self.set.clone())
        } else {
            Frame::atom_set(self.inner, name)
        }
    }
    fn knowledge_set(&self, i: halpern_moses::kripke::AgentId, a: &WorldSet) -> WorldSet {
        self.inner.knowledge(i, a)
    }
    fn distributed_set(&self, g: &AgentGroup, a: &WorldSet) -> WorldSet {
        self.inner.distributed_knowledge(g, a)
    }
}

/// Random monotone context around the hole atom `XSET`.
fn positive_context() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        3 => Just(Formula::atom("XSET")),
        1 => Just(Formula::atom("q0")),
        1 => Just(Formula::tt()),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or([a, b])),
            (0usize..2, inner.clone()).prop_map(|(i, a)| Formula::knows(AgentId::new(i), a)),
            inner
                .clone()
                .prop_map(|a| Formula::everyone(AgentGroup::all(2), a)),
            inner
                .clone()
                .prop_map(|a| Formula::someone(AgentGroup::all(2), a)),
            inner
                .clone()
                .prop_map(|a| Formula::common(AgentGroup::all(2), a)),
            inner
                .clone()
                .prop_map(|a| Formula::distributed(AgentGroup::all(2), a)),
            // Negative material only in the antecedent-free spots:
            inner.prop_map(|a| Formula::implies(Formula::atom("q0"), a)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn positive_contexts_are_monotone(ctx in positive_context(), seed in 0u64..500) {
        let m = random_model(seed, RandomModelSpec {
            num_agents: 2,
            num_worlds: 10,
            num_atoms: 1,
            max_blocks: 3,
        });
        // Random A ⊆ B.
        let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
        let mut a = WorldSet::empty(10);
        let mut b = WorldSet::empty(10);
        for w in 0..10 {
            let r = rng.next_below(3);
            if r >= 1 {
                b.insert(WorldId::new(w));
            }
            if r == 2 {
                a.insert(WorldId::new(w));
            }
        }
        let fa = WithAtom { inner: &m, set: a };
        let fb = WithAtom { inner: &m, set: b };
        let va = evaluate(&fa, &ctx).unwrap();
        let vb = evaluate(&fb, &ctx).unwrap();
        prop_assert!(va.is_subset(&vb), "context {} not monotone", ctx);
    }
}
