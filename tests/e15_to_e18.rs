//! Experiments E15 (fact discovery/publication), E17 (knowledge-based
//! protocols), E18 (simultaneous agreement) — cross-crate checks beyond
//! the module tests.

use halpern_moses::core::agreement::{
    agreement_interpreted, agreement_system, check_safety, ck_onset_in_clean_run, decision_of,
    AgreementSpec,
};
use halpern_moses::core::discovery::{
    deadlock_system, discovery_trajectory, has_deadlock, publication_stamp,
};
use halpern_moses::core::kbp::{knows_own_state_rule, KnowledgeProtocol, Turns};
use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::kripke::{AgentGroup, AgentId, WorldSet};
use halpern_moses::logic::Formula;

#[test]
fn e15_every_cyclic_graph_is_discovered_no_acyclic_one_is() {
    let isys = deadlock_system(3, 12).unwrap();
    let mut cyclic = 0;
    let mut acyclic = 0;
    for (_, run) in isys.system().runs() {
        let targets: Vec<u64> = run.procs.iter().map(|p| p.initial_state).collect();
        let traj = discovery_trajectory(&isys, &targets).unwrap();
        if has_deadlock(&targets) {
            cyclic += 1;
            assert!(
                traj.s_onset.is_some(),
                "cyclic graph {targets:?} undiscovered"
            );
            assert!(
                traj.e_onset.is_some(),
                "cyclic graph {targets:?} unpublished"
            );
        } else {
            acyclic += 1;
            assert_eq!(traj.s_onset, None, "false positive on {targets:?}");
        }
    }
    assert!(cyclic >= 5, "expected several deadlocked graphs");
    assert!(acyclic >= 5, "expected several live graphs");
}

#[test]
fn e15_publication_reaches_ct_for_every_deadlock() {
    let isys = deadlock_system(3, 12).unwrap();
    for (_, run) in isys.system().runs() {
        let targets: Vec<u64> = run.procs.iter().map(|p| p.initial_state).collect();
        if has_deadlock(&targets) {
            let stamp = publication_stamp(&isys, &targets).unwrap();
            assert!(stamp.is_some(), "no C^T stamp for {targets:?}");
        }
    }
}

#[test]
fn e17_kbp_agrees_with_direct_simulation_for_all_masks() {
    for n in 2..=5usize {
        let p = MuddyChildren::new(n);
        let sets: Vec<WorldSet> = (0..n).map(|i| p.muddy_set(i)).collect();
        let protocol =
            KnowledgeProtocol::new(p.model(), Turns::Simultaneous, knows_own_state_rule(sets));
        for mask in 1..(1u64 << n) {
            let kbp = protocol.run(p.world(mask), Some(&p.m_set()), n + 2);
            let direct = p.run_with_announcement(mask);
            assert_eq!(
                kbp.first_positive_round(),
                direct.first_yes_round(),
                "n={n} mask={mask:b}"
            );
            for (q, round) in direct.answers.iter().enumerate() {
                let kbp_round: Vec<bool> =
                    kbp.actions[q].iter().map(|a| a.unwrap_or(false)).collect();
                assert_eq!(&kbp_round, round, "n={n} mask={mask:b} round={q}");
            }
        }
    }
}

#[test]
fn e17_round_robin_always_terminates_with_someone_knowing() {
    // Sequential answers: information accumulates with every reply, and
    // within 2n rounds someone can always prove their state.
    let n = 4;
    let p = MuddyChildren::new(n);
    let sets: Vec<WorldSet> = (0..n).map(|i| p.muddy_set(i)).collect();
    let protocol = KnowledgeProtocol::new(p.model(), Turns::RoundRobin, knows_own_state_rule(sets));
    for mask in 1..(1u64 << n) {
        let trace = protocol.run(p.world(mask), Some(&p.m_set()), 2 * n);
        assert!(
            trace.first_positive_round().is_some(),
            "mask={mask:b} nobody ever knew"
        );
    }
}

#[test]
fn e18_safety_and_ck_shape() {
    let spec = AgreementSpec { n: 3, f: 1 };
    let system = agreement_system(spec);
    let report = check_safety(&system);
    assert_eq!(report.agreement_violations, 0);
    assert_eq!(report.validity_violations, 0);
    assert_eq!(report.runs, 200);
    // CK of the decision value at the end of round f+1 in every clean
    // run with a zero input.
    let isys = agreement_interpreted(spec);
    for inputs in 0..8u64 {
        if inputs == 0b111 {
            continue; // min is 1; the `min0` fact is false
        }
        let onset = ck_onset_in_clean_run(&isys, inputs).unwrap();
        assert_eq!(onset, Some(3), "inputs={inputs:03b}");
    }
}

#[test]
fn e18_nonfaulty_decisions_match_in_every_run() {
    let system = agreement_system(AgreementSpec { n: 3, f: 1 });
    for (_, run) in system.runs() {
        let decisions: Vec<u64> = (0..3)
            .filter_map(|i| decision_of(run, AgentId::new(i)))
            .collect();
        assert!(decisions.len() >= 2, "{}: at most one crash", run.name);
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{}", run.name);
    }
}

#[test]
fn e18_no_ck_before_decision_round_anywhere() {
    let isys = agreement_interpreted(AgreementSpec { n: 3, f: 1 });
    let g = AgentGroup::all(3);
    let ck = isys
        .eval(&Formula::common(g, Formula::atom("min0")))
        .unwrap();
    for (rid, run) in isys.system().runs() {
        for t in 0..=2u64 {
            assert!(
                !ck.contains(isys.world(rid, t)),
                "{} t={t}: CK before the end of round f+1",
                run.name
            );
        }
    }
}
