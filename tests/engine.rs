//! Integration tests of the `hm-engine` pipeline: the builder API end to
//! end, and the minimisation guarantee — `.minimize(true)` never changes
//! any verdict across the formula suite of the E1–E18 experiments.

use halpern_moses::core::agreement::{agreement_builder, AgreementSpec};
use halpern_moses::core::attain::uncertain_start_builder;
use halpern_moses::core::puzzles::r2d2::r2d2_parts;
use halpern_moses::core::variants::{ok_builder, skewed_broadcast_builder};
use halpern_moses::engine::{Engine, Query};
use halpern_moses::netsim::scenarios::R2d2Mode;

/// Asks every formula on sessions built with and without minimisation
/// and requires identical satisfying sets (the quotient answers
/// quotient-safe queries; temporal and `D_G` queries fall back).
fn assert_minimize_invariant(mk: impl Fn() -> Engine, formulas: &[&str]) {
    let raw = mk().minimize(false).build().expect("raw build");
    let min = mk().minimize(true).build().expect("minimized build");
    assert!(
        min.quotient().is_some(),
        "minimize(true) attaches a quotient"
    );
    for src in formulas {
        let q = Query::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(
            raw.satisfying(&q).unwrap(),
            min.satisfying(&q).unwrap(),
            "minimize changed the verdict of {src}"
        );
    }
}

#[test]
fn minimize_never_changes_generals_verdicts() {
    // The E3/E4/E8/E9/E10 formula families on the generals' scenario.
    assert_minimize_invariant(
        || Engine::for_scenario("generals").horizon(8),
        &[
            "dispatched",
            "attacking",
            "K1 dispatched",
            "K0 K1 dispatched",
            "K1 K0 K1 dispatched",
            "E{0,1} dispatched",
            "E^3{0,1} dispatched",
            "S{0,1} dispatched",
            "D{0,1} dispatched",
            "C{0,1} dispatched",
            "attacking -> E{0,1} attacking",
            "attacking -> C{0,1} attacking",
            "nu X. E{0,1} (dispatched & $X)",
            "mu X. dispatched | S{0,1} $X",
            // Temporal variants (full-frame fallback).
            "even dispatched",
            "alw (dispatched -> dispatched)",
            "Eeps[1]{0,1} dispatched",
            "Ceps[1]{0,1} dispatched",
            "Eev{0,1} dispatched",
            "Cev{0,1} dispatched",
        ],
    );
}

#[test]
fn minimize_never_changes_r2d2_verdicts() {
    for mode in [R2d2Mode::Uncertain, R2d2Mode::Exact, R2d2Mode::Timestamped] {
        assert_minimize_invariant(
            || Engine::from_system(r2d2_parts(2, 3, 3, mode).0),
            &[
                "sent",
                "sent_focus",
                "K0 K1 sent",
                "K0 K1 K0 K1 sent",
                "C{0,1} sent",
                "C{0,1} sent_focus",
                "once sent",
                "CT[6]{0,1} sent",
            ],
        );
    }
}

#[test]
fn minimize_never_changes_ok_and_broadcast_verdicts() {
    assert_minimize_invariant(
        || Engine::from_system(ok_builder(6).unwrap()),
        &[
            "psi",
            "ok_sent",
            "C{0,1} ok_sent",
            "Ceps[1]{0,1} psi",
            "psi -> Ceps[1]{0,1} psi",
        ],
    );
    assert_minimize_invariant(
        || Engine::from_system(skewed_broadcast_builder(10, 2).unwrap()),
        &[
            "sent_v",
            "C{0,1} sent_v",
            "CT[7]{0,1} sent_v",
            "CT[1]{0,1} sent_v",
        ],
    );
}

#[test]
fn minimize_never_changes_attain_and_agreement_verdicts() {
    assert_minimize_invariant(
        || Engine::from_system(uncertain_start_builder(5, false).unwrap()),
        &["sent", "K0 sent", "K1 sent", "C{0,1} sent", "S{0,1} !sent"],
    );
    assert_minimize_invariant(
        || Engine::from_system(agreement_builder(AgreementSpec { n: 3, f: 1 })),
        &[
            "min0",
            "decided0",
            "E{0,1,2} min0",
            "C{0,1,2} min0",
            "D{0,1,2} min0",
        ],
    );
}

#[test]
fn minimize_never_changes_muddy_verdicts() {
    // Model-sourced session: the quotient is computed post hoc.
    assert_minimize_invariant(
        || Engine::for_scenario("muddy:n=4"),
        &[
            "m",
            "muddy0",
            "K0 m",
            "E{0,1,2,3} m",
            "E^2{0,1,2,3} m & !E^3{0,1,2,3} m",
            "C{0,1,2,3} (m | !m)",
        ],
    );
}

#[test]
fn quotient_actually_shrinks_run_frames() {
    let session = Engine::for_scenario("generals")
        .horizon(8)
        .minimize(true)
        .build()
        .unwrap();
    let q = session.quotient().unwrap();
    assert!(
        q.model.num_worlds() < session.num_worlds(),
        "{} quotient worlds vs {} points",
        q.model.num_worlds(),
        session.num_worlds()
    );
}

#[test]
fn engine_options_compose() {
    // horizon + minimize + parallel on one pipeline.
    let session = Engine::for_scenario("generals")
        .horizon(6)
        .minimize(true)
        .parallel_enumeration(true)
        .build()
        .unwrap();
    let ck = session
        .ask(&Query::parse("C{0,1} dispatched").unwrap())
        .unwrap();
    assert!(ck.is_empty());
    let kb = session
        .ask(&Query::parse("K1 dispatched").unwrap())
        .unwrap();
    assert!(!kb.is_empty() && !kb.is_valid());
}
