//! Round-trip and error-path tests of the scenario registry and the
//! spec grammar: every registered scenario parses, builds, and answers
//! a smoke query; random in-range specs resolve to the values they
//! name; malformed specs fail with the intended `SpecError` variant.

use halpern_moses::engine::{Engine, ParamKind, Query, ScenarioRegistry, ScenarioSpec, SpecError};
use proptest::prelude::*;

/// Every registered name (under default parameters) parses, builds
/// through the engine, and answers its own example query — the whole
/// catalog is live, not just the entries the experiments happen to use.
#[test]
fn every_registered_scenario_builds_and_answers() {
    let reg = ScenarioRegistry::builtin();
    let names = reg.names();
    assert!(names.len() >= 14, "the catalog covers every frame family");
    for name in &names {
        let scenario = reg.get(name).unwrap();
        let query = Query::parse(&scenario.example_query())
            .unwrap_or_else(|e| panic!("{name}: example query: {e}"));
        let session = Engine::for_scenario(name)
            .build()
            .unwrap_or_else(|e| panic!("{name}: build: {e}"));
        let verdict = session
            .ask(&query)
            .unwrap_or_else(|e| panic!("{name}: ask: {e}"));
        assert!(
            verdict.count() <= session.num_worlds(),
            "{name}: verdict inside the universe"
        );
    }
}

/// The example queries are not vacuous: each one actually holds
/// somewhere on its frame (so `hm describe`'s suggestion demonstrates
/// something).
#[test]
fn example_queries_hold_somewhere() {
    let reg = ScenarioRegistry::builtin();
    for name in reg.names() {
        let scenario = reg.get(&name).unwrap();
        let query = Query::parse(&scenario.example_query()).unwrap();
        let session = Engine::for_scenario(&name).build().unwrap();
        assert!(
            !session.ask(&query).unwrap().is_empty(),
            "{name}: `{}` holds nowhere",
            scenario.example_query()
        );
    }
}

/// Formats a value inside the descriptor's range, biased to its edges.
fn pick_in_range(kind: &ParamKind, roll: u64) -> String {
    match kind {
        ParamKind::Int { min, max } => {
            // Clamp huge ranges (e.g. seeds) to something small.
            let hi = (*max).min(min.saturating_add(1_000_000));
            let v = match roll % 4 {
                0 => *min,
                1 => hi,
                _ => min + roll % (hi - min + 1),
            };
            v.to_string()
        }
        ParamKind::Bool => roll.is_multiple_of(2).to_string(),
        ParamKind::Choice(options) => options[roll as usize % options.len()].to_string(),
    }
}

/// A cheap per-index roll derived from the strategy-drawn seed.
fn roll(seed: u64, i: usize) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any spec assembled from declared keys and in-range values
    /// resolves, and resolution reports exactly the values written.
    #[test]
    fn in_range_specs_resolve_to_their_values(pick in 0usize..64, seed in 0u64..1_000_000) {
        let reg = ScenarioRegistry::builtin();
        let names = reg.names();
        let name: String = names[pick % names.len()].clone();
        let scenario = reg.get(&name).unwrap();
        let params = scenario.params();
        let mut spec: String = name.clone();
        let mut expected: Vec<(&'static str, String)> = Vec::new();
        for (i, d) in params.iter().enumerate() {
            // Skip roughly a third of the keys so defaults get
            // exercised too.
            if roll(seed, i).is_multiple_of(3) {
                continue;
            }
            let value = pick_in_range(&d.kind, roll(seed, i + 101));
            spec.push(if expected.is_empty() { ':' } else { ',' });
            spec.push_str(d.key);
            spec.push('=');
            spec.push_str(&value);
            expected.push((d.key, value));
        }
        // A bare name (no params picked) must also resolve.
        let (resolved, values) = reg.resolve(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        prop_assert_eq!(resolved.name(), name);
        for (key, value) in expected {
            prop_assert_eq!(values.get(key).unwrap().to_string(), value, "{}", spec);
        }
        // The syntactic parse round-trips through Display.
        let parsed = ScenarioSpec::parse(&spec).unwrap();
        prop_assert_eq!(parsed.to_string(), spec);
    }
}

/// Malformed and invalid specs fail with the intended variant, and the
/// message names the offending part.
#[test]
fn bad_specs_produce_the_intended_errors() {
    let reg = ScenarioRegistry::builtin();
    let err = |spec: &str| {
        reg.resolve(spec)
            .err()
            .unwrap_or_else(|| panic!("{spec} resolved"))
    };

    assert!(matches!(err("muddy:"), SpecError::Syntax { .. }));
    assert!(matches!(err("muddy:n"), SpecError::Syntax { .. }));
    assert!(matches!(err(""), SpecError::Syntax { .. }));

    match err("generls") {
        SpecError::UnknownScenario { suggestion, .. } => {
            assert_eq!(suggestion.as_deref(), Some("generals"));
        }
        other => panic!("wrong variant: {other}"),
    }
    match err("zzz") {
        SpecError::UnknownScenario {
            suggestion, known, ..
        } => {
            assert_eq!(suggestion, None, "no plausible typo target");
            assert!(known.contains(&"generals".to_string()));
        }
        other => panic!("wrong variant: {other}"),
    }

    assert!(matches!(
        err("muddy:kids=4"),
        SpecError::UnknownParam { .. }
    ));
    assert!(matches!(
        err("muddy:n=4,n=5"),
        SpecError::DuplicateParam { .. }
    ));
    assert!(matches!(
        err("muddy:n=four"),
        SpecError::InvalidValue { .. }
    ));
    assert!(matches!(err("muddy:n=99"), SpecError::OutOfRange { .. }));
    assert!(matches!(
        err("uncertain-start:global_clock=yes"),
        SpecError::InvalidValue { .. }
    ));
    assert!(matches!(
        err("views:view=forgetful"),
        SpecError::InvalidValue { .. }
    ));

    // Messages carry the pieces a user needs.
    let msg = err("agreement:f=9").to_string();
    assert!(
        msg.contains('f') && msg.contains('9') && msg.contains("1..=3"),
        "{msg}"
    );
}

/// Cross-parameter constraints surface at build time as spec errors.
#[test]
fn joint_constraints_fail_at_build() {
    let err = Engine::for_scenario("muddy:n=3,dirty=4")
        .build()
        .err()
        .unwrap();
    let msg = err.to_string();
    assert!(msg.contains("dirty") && msg.contains("exceeds"), "{msg}");
}
