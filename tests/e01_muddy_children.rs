//! Experiment E1: the muddy children puzzle (paper Section 2).
//!
//! Paper claims, checked exhaustively for n up to 7 (128 initial
//! situations at the top size):
//! 1. With the father's announcement and k muddy children, the first
//!    k−1 questions are answered "no" by everyone, and at question k
//!    exactly the muddy children answer "yes".
//! 2. Without the announcement, every question is answered "no" forever.
//! 3. Before the announcement E^{k−1} m holds and E^k m does not.
//! 4. After the announcement m is common knowledge.

use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::kripke::Restriction;

#[test]
fn full_claim_up_to_seven_children() {
    for n in 1..=7usize {
        let p = MuddyChildren::new(n);
        for mask in 1..(1u64 << n) {
            let k = mask.count_ones() as usize;
            let t = p.run_with_announcement(mask);
            assert_eq!(t.first_yes_round(), Some(k), "n={n} mask={mask:b}");
            let muddy: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            assert_eq!(t.yes_children(k), muddy, "n={n} mask={mask:b}");
            for q in 1..k {
                assert!(
                    t.answers[q - 1].iter().all(|&a| !a),
                    "n={n} mask={mask:b} round {q} should be all-no"
                );
            }
        }
    }
}

#[test]
fn silence_without_announcement_up_to_six() {
    for n in 1..=6usize {
        let p = MuddyChildren::new(n);
        for mask in 0..(1u64 << n) {
            assert_eq!(
                p.run_without_announcement(mask).first_yes_round(),
                None,
                "n={n} mask={mask:b}"
            );
        }
    }
}

#[test]
fn e_levels_match_popcount_minus_one() {
    for n in 2..=6usize {
        let p = MuddyChildren::new(n);
        for mask in 1..(1u64 << n) {
            let k = mask.count_ones() as usize;
            assert_eq!(
                p.e_level_before_announcement(mask, n + 2),
                k - 1,
                "n={n} mask={mask:b}"
            );
        }
    }
}

#[test]
fn announcement_produces_common_knowledge_of_m() {
    for n in 2..=6usize {
        let p = MuddyChildren::new(n);
        // Before: C m nowhere (the k=1 worlds chain everything to 0).
        assert!(p
            .model()
            .common_knowledge(&p.group(), &p.m_set())
            .is_empty());
        // After: C m everywhere surviving.
        let mut r = Restriction::new(p.model());
        r.announce(&p.m_set()).unwrap();
        assert_eq!(r.common_knowledge(&p.group(), &p.m_set()), *r.alive());
    }
}

#[test]
fn clean_children_learn_at_round_k_plus_one() {
    // After the muddy children say yes at round k, the clean ones can
    // infer their own state at round k+1.
    for n in 2..=5usize {
        let p = MuddyChildren::new(n);
        for mask in 1..(1u64 << n) {
            let k = mask.count_ones() as usize;
            if k == n {
                continue; // nobody clean
            }
            let t = p.run_with_announcement(mask);
            let all: Vec<usize> = (0..n).collect();
            assert_eq!(t.yes_children(k + 1), all, "n={n} mask={mask:b}");
        }
    }
}
