//! Property-based tests of the simulator: determinism, exhaustiveness,
//! and structural invariants of enumerated systems.

use halpern_moses::kripke::AgentId;
use halpern_moses::netsim::{
    enumerate_runs, Command, ExecutionSpec, FnProtocol, LocalView, LossyFixedDelay,
    SynchronousDelay, UnboundedDelay,
};
use halpern_moses::runs::conditions::extends;
use halpern_moses::runs::Event;
use halpern_moses::runs::Message;
use proptest::prelude::*;

/// p0 sends `count` messages, one per tick, starting at its first step.
fn burst(count: usize) -> impl halpern_moses::netsim::JointProtocol {
    FnProtocol::new("burst", move |v: &LocalView<'_>| {
        if v.me.index() == 0 && v.sent().count() < count {
            vec![Command::Send {
                to: AgentId::new(1),
                msg: Message::new(1, v.sent().count() as u64),
            }]
        } else {
            Vec::new()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lossy_enumeration_counts_are_exact(count in 1usize..4, horizon in 4u64..8) {
        // Each of the `count` messages is independently delivered or
        // lost: exactly 2^count runs (every send happens regardless,
        // since the sender never reacts to the outcome).
        let runs = enumerate_runs(
            &burst(count),
            &LossyFixedDelay { delay: 1 },
            &ExecutionSpec::simple(2, horizon),
            1 << 12,
        )
        .unwrap();
        prop_assert_eq!(runs.len(), 1 << count);
        // All runs share the sender's event sequence.
        for r in &runs {
            let sends = r.proc(AgentId::new(0)).events.len();
            prop_assert_eq!(sends, count);
        }
    }

    #[test]
    fn unbounded_delay_runs_partition_by_schedule(horizon in 3u64..7) {
        // One message, delays 1..=horizon or lost: horizon+1 runs.
        let runs = enumerate_runs(
            &burst(1),
            &UnboundedDelay { min_delay: 1 },
            &ExecutionSpec::simple(2, horizon),
            1 << 12,
        )
        .unwrap();
        prop_assert_eq!(runs.len(), horizon as usize + 1);
        // Exactly one run per delivery time; delivery times distinct.
        let mut times: Vec<Option<u64>> = runs
            .iter()
            .map(|r| {
                r.proc(AgentId::new(1))
                    .events
                    .iter()
                    .find(|e| e.event.is_recv())
                    .map(|e| e.time)
            })
            .collect();
        times.sort();
        times.dedup();
        prop_assert_eq!(times.len(), horizon as usize + 1);
    }

    #[test]
    fn deterministic_protocols_yield_identical_reruns(count in 1usize..3, horizon in 3u64..7) {
        let spec = ExecutionSpec::simple(2, horizon);
        let a = enumerate_runs(&burst(count), &LossyFixedDelay { delay: 1 }, &spec, 1024).unwrap();
        let b = enumerate_runs(&burst(count), &LossyFixedDelay { delay: 1 }, &spec, 1024).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn runs_agree_until_first_divergent_delivery(horizon in 4u64..8) {
        // Any two enumerated runs extend each other up to (just before)
        // the first time their delivery schedules differ.
        let runs = enumerate_runs(
            &burst(2),
            &LossyFixedDelay { delay: 1 },
            &ExecutionSpec::simple(2, horizon),
            1024,
        )
        .unwrap();
        for x in &runs {
            for y in &runs {
                let recvs = |r: &halpern_moses::runs::Run| -> Vec<u64> {
                    r.proc(AgentId::new(1))
                        .events
                        .iter()
                        .filter(|e| e.event.is_recv())
                        .map(|e| e.time)
                        .collect()
                };
                let (rx, ry) = (recvs(x), recvs(y));
                let diverge = rx
                    .iter()
                    .zip(ry.iter())
                    .position(|(a, b)| a != b)
                    .map(|i| rx[i].min(ry[i]))
                    .unwrap_or_else(|| {
                        rx.len()
                            .min(ry.len())
                            .checked_sub(0)
                            .map(|i| {
                                rx.get(i).copied().or(ry.get(i).copied()).unwrap_or(horizon)
                            })
                            .unwrap_or(horizon)
                    });
                prop_assert!(extends(x, y, diverge), "{} vs {}", x.name, y.name);
            }
        }
    }

    #[test]
    fn synchronous_delivery_is_reliable_and_unique(horizon in 4u64..9) {
        let runs = enumerate_runs(
            &burst(2),
            &SynchronousDelay { delay: 2 },
            &ExecutionSpec::simple(2, horizon),
            64,
        )
        .unwrap();
        prop_assert_eq!(runs.len(), 1, "no adversarial choice remains");
        let r = &runs[0];
        for e in &r.proc(AgentId::new(1)).events {
            if let Event::Recv { .. } = e.event {
                // Delivered exactly 2 after the matching send.
                let matching_send = r
                    .proc(AgentId::new(0))
                    .events
                    .iter()
                    .find(|s| matches!((s.event, e.event), (
                        Event::Send { msg: a, .. },
                        Event::Recv { msg: b, .. },
                    ) if a == b))
                    .unwrap();
                prop_assert_eq!(e.time, matching_send.time + 2);
            }
        }
    }
}
