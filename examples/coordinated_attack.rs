//! The coordinated attack problem (Sections 4 and 7 of the paper).
//!
//! Usage: `cargo run --example coordinated_attack -- [horizon]`
//!
//! Builds the full run space of the generals' handshake under a lossy
//! messenger, prints the knowledge ladder per delivered message, verifies
//! that `dispatched` never becomes common knowledge, and sweeps a family
//! of threshold attack rules (every one is unsafe or never attacks —
//! Corollary 6).

use halpern_moses::core::puzzles::attack::{
    classify_attack_rule, common_knowledge_of_dispatch, generals_interpreted, ladder_depth_at_end,
    AttackRuleOutcome,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("horizon must be a number"))
        .unwrap_or(8);

    let isys = generals_interpreted(horizon)?;
    println!(
        "generals' handshake, horizon {horizon}: {} runs, {} points",
        isys.system().num_runs(),
        isys.model().num_worlds()
    );

    println!("\ndeliveries -> interleaved knowledge depth of `dispatched`:");
    let max_d = (horizon as usize).div_ceil(2);
    for d in 0..=max_d {
        let depth = ladder_depth_at_end(&isys, d, max_d + 3);
        let formula = match depth {
            0 => "(none)".to_string(),
            k => {
                let mut s = String::new();
                for level in (1..=k).rev() {
                    s.push_str(if level % 2 == 1 { "K_B " } else { "K_A " });
                }
                s + "dispatched"
            }
        };
        println!("  d = {d}: depth {depth}  {formula}");
    }

    let ck = common_knowledge_of_dispatch(&isys);
    println!(
        "\nC(dispatched) holds at {} points (paper: none — Theorem 5)",
        ck.count()
    );

    println!("\nthreshold attack-rule sweep (Corollary 6):");
    for ta in 0..=2usize {
        for tb in 0..=2usize {
            let verdict = match classify_attack_rule(horizon, ta, tb)? {
                AttackRuleOutcome::Unsafe(run) => format!("UNSAFE (lone attacker in {run})"),
                AttackRuleOutcome::AttacksWithoutPlan(run) => {
                    format!("INADMISSIBLE (attacks without communication in {run})")
                }
                AttackRuleOutcome::NeverAttacks => "never attacks".to_string(),
                AttackRuleOutcome::CoordinatedAttack => {
                    "COORDINATED?! (would contradict Corollary 6)".to_string()
                }
            };
            println!("  thresholds (A={ta}, B={tb}): {verdict}");
        }
    }
    Ok(())
}
