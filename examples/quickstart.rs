//! Quickstart: the muddy children in ten lines, then a free-form query.
//!
//! Run with: `cargo run --example quickstart`

use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::logic::{evaluate, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three children; children 0 and 2 are muddy (mask 0b101).
    let puzzle = MuddyChildren::new(3);
    let trace = puzzle.run_with_announcement(0b101);

    println!("muddy children, n = 3, muddy = {{0, 2}}");
    for (q, round) in trace.answers.iter().enumerate() {
        let answers: Vec<&str> = round
            .iter()
            .map(|&a| if a { "yes" } else { "no" })
            .collect();
        println!("  question {}: {}", q + 1, answers.join(", "));
    }
    println!(
        "first yes at round {:?} (paper: round k = 2)",
        trace.first_yes_round()
    );

    // The same model answers arbitrary epistemic queries.
    let model = puzzle.model();
    let f = parse("E{0,1,2} m & !E^2{0,1,2} m")?;
    let holds = evaluate(model, &f)?;
    println!(
        "\"everyone knows m but not everyone knows that\" holds at {} of {} worlds",
        holds.count(),
        model.num_worlds()
    );
    Ok(())
}
