//! The R2–D2 ε-ladder (Section 8 of the paper).
//!
//! Usage: `cargo run --example r2d2_epsilon -- [eps]`
//!
//! Shows that with delivery uncertainty ε, every level of "R2 knows that
//! D2 knows" costs exactly ε time units and common knowledge is never
//! attained — and that removing the uncertainty (exact delay, or a
//! timestamped message under a global clock) restores it at `t_S + ε`.

use halpern_moses::core::puzzles::r2d2::{
    ck_sent, first_time, ladder_onsets, r2d2_interpreted, R2d2Analysis,
};
use halpern_moses::kripke::{AgentGroup, WorldSet};
use halpern_moses::logic::Formula;
use halpern_moses::netsim::scenarios::R2d2Mode;

/// Points of `set` at times strictly before `cutoff`.
fn isys_window_count(analysis: &R2d2Analysis, set: &WorldSet, cutoff: u64) -> usize {
    analysis
        .isys
        .system()
        .runs()
        .flat_map(|(rid, run)| {
            (0..cutoff.min(run.horizon + 1))
                .map(move |t| (rid, t))
                .collect::<Vec<_>>()
        })
        .filter(|&(rid, t)| set.contains(analysis.isys.world(rid, t)))
        .count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eps: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("eps must be a number"))
        .unwrap_or(3);

    println!("== uncertain delivery (0 or ε = {eps}) ==");
    let analysis = r2d2_interpreted(eps, 4, 4, R2d2Mode::Uncertain);
    let ts = analysis.meta.ts;
    println!("message sent at t_S = {ts}; onsets in the slow run:");
    for (k, onset) in ladder_onsets(&analysis.isys, &analysis.meta, 3)?
        .iter()
        .enumerate()
    {
        match onset {
            Some(t) => {
                let expect = if k == 0 {
                    format!("t_S = {ts}")
                } else {
                    format!("t_S + {k}ε (+1) = {}", ts + k as u64 * eps + 1)
                };
                println!("  (K_R K_D)^{k} sent first holds at t = {t}   [{expect}]");
            }
            None => println!("  (K_R K_D)^{k} sent never holds"),
        }
    }
    // Count CK points inside the meaningful window (before the finite
    // family's last send time, past which `sent` is vacuously valid).
    let last_send = 8 * eps; // (pre + post) · ε with pre = post = 4
    let ck = ck_sent(&analysis.isys)?;
    let in_window = isys_window_count(&analysis, &ck, last_send);
    println!("C(sent) points before t = {last_send}: {in_window} (paper: unattainable)");

    println!("\n== delivery in exactly ε ==");
    let exact = r2d2_interpreted(eps, 2, 2, R2d2Mode::Exact);
    let f = Formula::common(AgentGroup::all(2), Formula::atom("sent"));
    let onset = first_time(&exact.isys, exact.meta.focus_slow, &f)?;
    println!(
        "C(sent) first holds at t = {:?}   [paper: t_S + ε = {}]",
        onset,
        exact.meta.ts + eps
    );

    println!("\n== timestamped message, global clock ==");
    let stamped = r2d2_interpreted(eps, 2, 2, R2d2Mode::Timestamped);
    let f = Formula::common(AgentGroup::all(2), Formula::atom("sent_focus"));
    let onset = first_time(&stamped.isys, stamped.meta.focus_slow, &f)?;
    println!(
        "C(sent m') first holds at t = {:?}   [paper: t_S + ε = {}]",
        onset,
        stamped.meta.ts + eps
    );
    println!("\n(The +1 offsets are the discrete-history comprehension tick; see DESIGN.md.)");
    Ok(())
}
