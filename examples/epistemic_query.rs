//! Ad-hoc epistemic queries against the built-in scenarios.
//!
//! Usage:
//! ```text
//! cargo run --example epistemic_query -- <scenario> "<formula>"
//! ```
//! Scenarios: `muddy4` (4 muddy children), `generals` (handshake,
//! horizon 8), `r2d2` (uncertain channel, ε = 2).
//!
//! Formula syntax (see `hm-logic`): atoms, `! & | -> <->`,
//! `K0 K1 … E{0,1} E^2{0,1} S{..} D{..} C{..}`,
//! `Eeps[2]{0,1} Ceps[2]{0,1} Eev{..} Cev{..} ET[5]{..} CT[5]{..}`,
//! `next even alw once`, `nu X. … $X`, `mu X. …`.
//!
//! Examples:
//! ```text
//! cargo run --example epistemic_query -- muddy4 "E{0,1,2,3} m & !E^2{0,1,2,3} m"
//! cargo run --example epistemic_query -- generals "K1 dispatched & !K0 K1 dispatched"
//! cargo run --example epistemic_query -- r2d2 "Ceps[2]{0,1} sent"
//! ```

use halpern_moses::core::puzzles::attack::generals_interpreted;
use halpern_moses::core::puzzles::muddy::MuddyChildren;
use halpern_moses::core::puzzles::r2d2::r2d2_interpreted;
use halpern_moses::logic::{evaluate, parse};
use halpern_moses::netsim::scenarios::R2d2Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scenario = args.next().unwrap_or_else(|| "muddy4".into());
    let src = args
        .next()
        .unwrap_or_else(|| "E{0,1,2,3} m & !E^2{0,1,2,3} m".into());
    let formula = parse(&src)?;
    println!("scenario: {scenario}");
    println!("formula:  {formula}");

    match scenario.as_str() {
        "muddy4" => {
            let p = MuddyChildren::new(4);
            let holds = evaluate(p.model(), &formula)?;
            println!(
                "holds at {}/{} worlds:",
                holds.count(),
                p.model().num_worlds()
            );
            for w in holds.iter() {
                println!("  {}", p.model().world_label(w));
            }
        }
        "generals" => {
            let isys = generals_interpreted(8)?;
            let holds = isys.eval(&formula)?;
            println!(
                "holds at {}/{} points:",
                holds.count(),
                isys.model().num_worlds()
            );
            for w in holds.iter().take(40) {
                println!("  {}", isys.point_name(w));
            }
            if holds.count() > 40 {
                println!("  … ({} more)", holds.count() - 40);
            }
        }
        "r2d2" => {
            let analysis = r2d2_interpreted(2, 3, 3, R2d2Mode::Uncertain);
            let holds = analysis.isys.eval(&formula)?;
            println!(
                "holds at {}/{} points:",
                holds.count(),
                analysis.isys.model().num_worlds()
            );
            for w in holds.iter().take(40) {
                println!("  {}", analysis.isys.point_name(w));
            }
            if holds.count() > 40 {
                println!("  … ({} more)", holds.count() - 40);
            }
        }
        other => {
            eprintln!("unknown scenario `{other}` (use muddy4 | generals | r2d2)");
            std::process::exit(2);
        }
    }
    Ok(())
}
