//! Ad-hoc epistemic queries against the built-in scenarios, through the
//! `hm-engine` pipeline.
//!
//! Usage:
//! ```text
//! cargo run --example epistemic_query -- <scenario> "<formula>"
//! ```
//! Scenarios: any name in the engine's built-in registry — `muddy4`
//! (4 muddy children, and `muddy2`…`muddy8`), `generals` (handshake,
//! horizon 8), `r2d2` (uncertain channel, ε = 2), `r2d2-exact`,
//! `r2d2-timestamped`, `ok`.
//!
//! Formula syntax (see `hm-logic`): atoms, `! & | -> <->`,
//! `K0 K1 … E{0,1} E^2{0,1} S{..} D{..} C{..}`,
//! `Eeps[2]{0,1} Ceps[2]{0,1} Eev{..} Cev{..} ET[5]{..} CT[5]{..}`,
//! `next even alw once`, `nu X. … $X`, `mu X. …`.
//!
//! Examples:
//! ```text
//! cargo run --example epistemic_query -- muddy4 "E{0,1,2,3} m & !E^2{0,1,2,3} m"
//! cargo run --example epistemic_query -- generals "K1 dispatched & !K0 K1 dispatched"
//! cargo run --example epistemic_query -- r2d2 "Ceps[2]{0,1} sent"
//! ```

use halpern_moses::engine::{Engine, EngineError, Query, ScenarioRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let scenario = args.next().unwrap_or_else(|| "muddy4".into());
    let src = args
        .next()
        .unwrap_or_else(|| "E{0,1,2,3} m & !E^2{0,1,2,3} m".into());
    let query = Query::parse(&src)?;
    println!("scenario: {scenario}");
    println!("formula:  {query}");

    // One pipeline for every scenario: name → Engine → Session → Verdict.
    let mut session = match Engine::for_scenario(&scenario).build() {
        Ok(s) => s,
        Err(EngineError::UnknownScenario(name)) => {
            let names = ScenarioRegistry::builtin().names().join(" | ");
            eprintln!("unknown scenario `{name}` (use {names})");
            std::process::exit(2);
        }
        Err(e) => return Err(e.into()),
    };
    let verdict = session.ask(&query)?;
    let kind = if session.interpreted().is_some() {
        "points"
    } else {
        "worlds"
    };
    println!(
        "holds at {}/{} {kind}:",
        verdict.count(),
        session.num_worlds()
    );
    let cap = if session.interpreted().is_some() {
        40
    } else {
        usize::MAX
    };
    for w in verdict.satisfying().iter().take(cap) {
        println!("  {}", session.world_name(w));
    }
    if verdict.count() > cap {
        println!("  … ({} more)", verdict.count() - cap);
    }
    Ok(())
}
