//! Ad-hoc epistemic queries against the built-in scenarios, through the
//! `hm-engine` pipeline.
//!
//! The `hm` CLI (`cargo run -p hm-bench --bin hm -- help`) is the
//! full-featured version of this; the example shows the API surface in
//! a few lines.
//!
//! Usage:
//! ```text
//! cargo run --example epistemic_query -- <spec> "<formula>"
//! ```
//! `<spec>` is a scenario spec string, `name:key=value,...` — any name
//! in the engine's built-in registry, e.g. `muddy` (`muddy:n=6,dirty=3`
//! configures it), `generals`, `r2d2:eps=3`, `uncertain-start`,
//! `agreement:n=3,f=1`, `ok`. See `SCENARIOS.md` for the catalog.
//!
//! Formula syntax (see `hm-logic`): atoms, `! & | -> <->`,
//! `K0 K1 … E{0,1} E^2{0,1} S{..} D{..} C{..}`,
//! `Eeps[2]{0,1} Ceps[2]{0,1} Eev{..} Cev{..} ET[5]{..} CT[5]{..}`,
//! `next even alw once`, `nu X. … $X`, `mu X. …`.
//!
//! Examples:
//! ```text
//! cargo run --example epistemic_query -- muddy:n=4 "E{0,1,2,3} m & !E^2{0,1,2,3} m"
//! cargo run --example epistemic_query -- generals "K1 dispatched & !K0 K1 dispatched"
//! cargo run --example epistemic_query -- r2d2:eps=2 "Ceps[2]{0,1} sent"
//! cargo run --example epistemic_query -- agreement:n=3,f=1 "C{0,1,2} min0"
//! ```

use halpern_moses::engine::{Engine, EngineError, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let spec = args.next().unwrap_or_else(|| "muddy:n=4".into());
    let src = args
        .next()
        .unwrap_or_else(|| "E{0,1,2,3} m & !E^2{0,1,2,3} m".into());
    let query = Query::parse(&src)?;
    println!("scenario: {spec}");
    println!("formula:  {query}");

    // One pipeline for every scenario: spec → Engine → Session → Verdict.
    let session = match Engine::for_scenario(&spec).build() {
        Ok(s) => s,
        Err(EngineError::Spec(e)) => {
            // Spec errors are self-describing: unknown scenario (with a
            // nearest-name suggestion), unknown key, out-of-range value.
            eprintln!("{e}");
            std::process::exit(2);
        }
        Err(e) => return Err(e.into()),
    };
    let verdict = session.ask(&query)?;
    let kind = if session.interpreted().is_some() {
        "points"
    } else {
        "worlds"
    };
    println!(
        "holds at {}/{} {kind}:",
        verdict.count(),
        session.num_worlds()
    );
    let cap = if session.interpreted().is_some() {
        40
    } else {
        usize::MAX
    };
    for w in verdict.satisfying().iter().take(cap) {
        println!("  {}", session.world_name(w));
    }
    if verdict.count() > cap {
        println!("  … ({} more)", verdict.count() - cap);
    }
    Ok(())
}
