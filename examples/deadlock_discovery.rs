//! Fact discovery and fact publication (Section 3 of the paper).
//!
//! Usage: `cargo run --example deadlock_discovery`
//!
//! A deadlock starts as *distributed* knowledge (the wait-for graph is
//! spread over the processes), a probe protocol *discovers* it
//! (`D → S`), and the detector's broadcast *publishes* it
//! (`S → E → C^T`). Plain common knowledge is out of reach; timestamped
//! common knowledge is what the broadcast actually achieves.

use halpern_moses::core::discovery::{deadlock_system, discovery_trajectory, publication_stamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isys = deadlock_system(3, 12)?;
    println!(
        "wait-for graphs over 3 processes: {} runs, {} points\n",
        isys.system().num_runs(),
        isys.model().num_worlds()
    );

    for (label, graph) in [
        ("three-cycle 0->1->2->0", [1u64, 2, 0]),
        ("two-cycle 0<->1, 2 free", [1, 0, 3]),
        ("chain 0->1->2 (no deadlock)", [1, 2, 3]),
    ] {
        let traj = discovery_trajectory(&isys, &graph)?;
        println!("{label}:");
        println!("  D(deadlock) from t = {:?}", traj.d_onset);
        println!(
            "  S(deadlock) from t = {:?}   (the discovery)",
            traj.s_onset
        );
        println!(
            "  E(deadlock) from t = {:?}   (after the alarm)",
            traj.e_onset
        );
        if traj.s_onset.is_some() {
            let stamp = publication_stamp(&isys, &graph)?;
            println!("  C^T(deadlock) publishable with timestamp T = {stamp:?}");
        }
        println!();
    }
    Ok(())
}
