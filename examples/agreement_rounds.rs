//! Simultaneous agreement under crash failures ([DM90], Section 11 fn. 5).
//!
//! Usage: `cargo run --example agreement_rounds`
//!
//! Enumerates every crash pattern of a synchronous full-information
//! protocol with n = 3, f = 1, checks agreement/validity/simultaneity,
//! and shows that the decision value becomes common knowledge exactly at
//! the end of round f + 1 — the knowledge-theoretic reason simultaneous
//! agreement needs f + 1 rounds.

use halpern_moses::core::agreement::{
    agreement_interpreted, agreement_system, check_safety, ck_onset_in_clean_run, AgreementSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = AgreementSpec { n: 3, f: 1 };
    let system = agreement_system(spec);
    println!(
        "n = {}, f = {}: {} runs (all crash patterns x all inputs)",
        spec.n,
        spec.f,
        system.num_runs()
    );

    let report = check_safety(&system);
    println!(
        "agreement violations: {}   validity violations: {}   (over {} runs)",
        report.agreement_violations, report.validity_violations, report.runs
    );

    let isys = agreement_interpreted(spec);
    for inputs in [0b110u64, 0b010, 0b000] {
        let onset = ck_onset_in_clean_run(&isys, inputs)?;
        println!(
            "inputs {:03b}: C(decision value) first at t = {:?}  [end of round f+1 = t=3]",
            inputs, onset
        );
    }
    println!("\n(CK at t < 3 would contradict the f+1 round lower bound.)");
    Ok(())
}
