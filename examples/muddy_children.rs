//! The muddy children puzzle, round by round (Section 2 of the paper).
//!
//! Usage: `cargo run --example muddy_children -- [n] [muddy-mask]`
//! (defaults: n = 5, mask = 0b10110).
//!
//! Prints the knowledge ladder before the announcement, then the rounds
//! with and without the father's statement, reproducing experiment E1.

use halpern_moses::core::puzzles::muddy::MuddyChildren;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|s| s.parse().expect("n must be a number"))
        .unwrap_or(5);
    let mask: u64 = args
        .next()
        .map(|s| u64::from_str_radix(s.trim_start_matches("0b"), 2).expect("mask must be binary"))
        .unwrap_or(0b10110 & ((1 << n) - 1));
    assert!(mask != 0 && mask < (1 << n), "mask must be non-zero, < 2^n");

    let k = mask.count_ones();
    let puzzle = MuddyChildren::new(n);
    println!("n = {n} children, muddy mask = {mask:0n$b} (k = {k})\n");

    println!(
        "Before the father speaks: E^j m holds for j <= {} (paper: k-1 = {})",
        puzzle.e_level_before_announcement(mask, n + 1),
        k - 1
    );

    println!("\n== with the father's announcement ==");
    let trace = puzzle.run_with_announcement(mask);
    print_rounds(&trace.answers);
    println!(
        "first yes: round {:?}  (paper: round k = {k})",
        trace.first_yes_round()
    );
    println!(
        "who: {:?}  (paper: exactly the muddy children)",
        trace.yes_children(k as usize)
    );

    println!("\n== without the announcement ==");
    let trace = puzzle.run_without_announcement(mask);
    print_rounds(&trace.answers);
    println!("first yes: {:?}  (paper: never)", trace.first_yes_round());
}

fn print_rounds(answers: &[Vec<bool>]) {
    for (q, round) in answers.iter().enumerate() {
        let line: String = round.iter().map(|&a| if a { 'Y' } else { '.' }).collect();
        println!("  round {:>2}: {line}", q + 1);
    }
}
